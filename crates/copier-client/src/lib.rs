//! # copier-client — libCopier
//!
//! The client library of Table 2: `amemcpy`/`amemmove`/`csync`/`csync_all`
//! high-level APIs, `_amemcpy`/`_csync` low-level variants with customized
//! descriptors, per-thread queues, lazy copies and abort, the descriptor
//! pool, kernel submission sections with cross-queue barriers, and the
//! synchronous baselines Copier is compared against.

pub mod api;
pub mod pool;
pub mod syncops;

pub use api::{
    AmemcpyOpts, CopierHandle, CsyncResult, KernelSection, ShmBinding, SubmitError, SubmitResult,
};
pub use pool::DescriptorPool;
pub use syncops::{sync_copy, sync_memcpy, sync_memmove};

#[cfg(test)]
mod e2e {
    use std::cell::RefCell;
    use std::rc::Rc;

    use copier_core::{Copier, CopierConfig, CopyFault, Handler};
    use copier_hw::CostModel;
    use copier_mem::{AddressSpace, AllocPolicy, PhysMem, Prot, VirtAddr};
    use copier_sim::{Machine, Nanos, Sim};

    use crate::api::{AmemcpyOpts, CopierHandle};

    struct World {
        sim: Sim,
        machine: Rc<Machine>,
        pm: Rc<PhysMem>,
        svc: Rc<Copier>,
    }

    /// Builds a 2-core machine: core 0 = app, core 1 = Copier.
    fn world(cfg: CopierConfig) -> World {
        let sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let pm = Rc::new(PhysMem::new(4096, AllocPolicy::Scattered));
        let cost = Rc::new(CostModel::default());
        let svc = Copier::new(&h, Rc::clone(&pm), vec![machine.core(1)], cost, cfg);
        svc.start();
        World {
            sim,
            machine,
            pm,
            svc,
        }
    }

    fn fill_pattern(space: &Rc<AddressSpace>, va: VirtAddr, len: usize, salt: u8) -> Vec<u8> {
        let data: Vec<u8> = (0..len)
            .map(|i| ((i as u32 * 31 + salt as u32) % 251) as u8)
            .collect();
        space.write_bytes(va, &data).unwrap();
        data
    }

    #[test]
    fn amemcpy_csync_roundtrip() {
        let mut w = world(CopierConfig::default());
        let space = AddressSpace::new(1, Rc::clone(&w.pm));
        let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
        let core = w.machine.core(0);
        let space2 = Rc::clone(&space);
        let svc = Rc::clone(&w.svc);
        w.sim.spawn("app", async move {
            let src = space2.mmap(64 * 1024, Prot::RW, true).unwrap();
            let dst = space2.mmap(64 * 1024, Prot::RW, true).unwrap();
            let data = fill_pattern(&space2, src, 64 * 1024, 7);
            lib.amemcpy(&core, dst, src, 64 * 1024).await.unwrap();
            lib.csync(&core, dst, 64 * 1024).await.unwrap();
            let mut out = vec![0u8; 64 * 1024];
            space2.read_bytes(dst, &mut out).unwrap();
            assert_eq!(out, data);
            svc.stop();
        });
        w.sim.run();
        let st = w.svc.stats();
        assert_eq!(st.bytes_copied, 64 * 1024);
        assert_eq!(st.tasks_completed, 1);
    }

    #[test]
    fn copy_overlaps_with_compute() {
        // The headline mechanism: app compute and the copy proceed in
        // parallel, so total time ≈ max(compute, copy), not the sum.
        let len = 256 * 1024;
        let compute = Nanos::from_micros(200);

        let run = |async_mode: bool| -> Nanos {
            let mut w = world(CopierConfig::default());
            let space = AddressSpace::new(1, Rc::clone(&w.pm));
            let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
            let core = w.machine.core(0);
            let space2 = Rc::clone(&space);
            let svc = Rc::clone(&w.svc);
            let h = w.sim.handle();
            let cost = Rc::clone(w.svc.cost_model());
            let end = Rc::new(std::cell::Cell::new(Nanos::ZERO));
            let end2 = Rc::clone(&end);
            w.sim.spawn("app", async move {
                let src = space2.mmap(len, Prot::RW, true).unwrap();
                let dst = space2.mmap(len, Prot::RW, true).unwrap();
                fill_pattern(&space2, src, len, 3);
                let t0 = h.now();
                if async_mode {
                    lib.amemcpy(&core, dst, src, len).await.unwrap();
                    core.advance(compute).await; // the Copy-Use window
                    lib.csync(&core, dst, len).await.unwrap();
                } else {
                    crate::syncops::sync_memcpy(&core, &cost, &space2, dst, src, len)
                        .await
                        .unwrap();
                    core.advance(compute).await;
                }
                end2.set(h.now() - t0);
                svc.stop();
            });
            w.sim.run();
            end.get()
        };

        let t_async = run(true);
        let t_sync = run(false);
        assert!(
            t_async < t_sync,
            "async {t_async} should beat sync {t_sync}"
        );
        // 256 KB AVX copy ≈ 23.8 µs; fully hidden inside the 200 µs window.
        let hidden = t_sync - t_async;
        assert!(
            hidden > Nanos::from_micros(15),
            "most of the copy should be hidden, got {hidden}"
        );
    }

    #[test]
    fn segment_pipeline_unblocks_early() {
        // csync of the first KB returns before the full 256 KB lands.
        let mut w = world(CopierConfig::default());
        let space = AddressSpace::new(1, Rc::clone(&w.pm));
        let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
        let core = w.machine.core(0);
        let space2 = Rc::clone(&space);
        let svc = Rc::clone(&w.svc);
        let h = w.sim.handle();
        let cost = Rc::clone(w.svc.cost_model());
        w.sim.spawn("app", async move {
            let len = 256 * 1024;
            let src = space2.mmap(len, Prot::RW, true).unwrap();
            let dst = space2.mmap(len, Prot::RW, true).unwrap();
            fill_pattern(&space2, src, len, 9);
            let d = lib.amemcpy(&core, dst, src, len).await.unwrap();
            lib.csync(&core, dst, 1024).await.unwrap();
            let t_first = h.now();
            assert!(d.range_ready(0, 1024));
            assert!(
                !d.all_ready(),
                "first segment ready while the tail is still copying"
            );
            lib.csync(&core, dst, len).await.unwrap();
            let t_all = h.now();
            assert!(t_all - t_first > cost.cpu_copy(copier_hw::CpuCopyKind::Avx2, 64 * 1024));
            svc.stop();
        });
        w.sim.run();
    }

    #[test]
    fn absorption_short_circuits_chain() {
        // A: S1 → I (16 KB), B: I → D. With absorption the service copies
        // S1 → D directly and I is owed lazily.
        let mut w = world(CopierConfig::default());
        let space = AddressSpace::new(1, Rc::clone(&w.pm));
        let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
        let core = w.machine.core(0);
        let space2 = Rc::clone(&space);
        let svc = Rc::clone(&w.svc);
        w.sim.spawn("app", async move {
            let len = 16 * 1024;
            let s1 = space2.mmap(len, Prot::RW, true).unwrap();
            let ibuf = space2.mmap(len, Prot::RW, true).unwrap();
            let d = space2.mmap(len, Prot::RW, true).unwrap();
            let data = fill_pattern(&space2, s1, len, 5);
            // Submit back-to-back so both sit in the window together.
            lib.amemcpy(&core, ibuf, s1, len).await.unwrap();
            lib.amemcpy(&core, d, ibuf, len).await.unwrap();
            lib.csync(&core, d, len).await.unwrap();
            let mut out = vec![0u8; len];
            space2.read_bytes(d, &mut out).unwrap();
            assert_eq!(out, data, "short-circuited data must be correct");
            // Absorption must have redirected some bytes.
            assert!(svc.stats().bytes_absorbed > 0, "{:?}", svc.stats());
            // The I buffer is still owed; csync forces it.
            lib.csync(&core, ibuf, len).await.unwrap();
            space2.read_bytes(ibuf, &mut out).unwrap();
            assert_eq!(out, data);
            svc.stop();
        });
        w.sim.run();
    }

    #[test]
    fn lazy_task_absorbed_and_aborted() {
        // The proxy pattern (§4.4): K1 → U lazy; U → K2; abort K1 → U.
        let mut w = world(CopierConfig::default());
        let space = AddressSpace::new(1, Rc::clone(&w.pm));
        let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
        let core = w.machine.core(0);
        let space2 = Rc::clone(&space);
        let svc = Rc::clone(&w.svc);
        w.sim.spawn("app", async move {
            let len = 32 * 1024;
            let k1 = space2.mmap(len, Prot::RW, true).unwrap();
            let u = space2.mmap(len, Prot::RW, true).unwrap();
            let k2 = space2.mmap(len, Prot::RW, true).unwrap();
            let data = fill_pattern(&space2, k1, len, 11);
            let opts = AmemcpyOpts {
                lazy: true,
                ..AmemcpyOpts::default()
            };
            lib._amemcpy(&core, u, k1, len, opts).await.unwrap();
            lib.amemcpy(&core, k2, u, len).await.unwrap();
            lib.csync(&core, k2, len).await.unwrap();
            let mut out = vec![0u8; len];
            space2.read_bytes(k2, &mut out).unwrap();
            assert_eq!(out, data);
            let absorbed = svc.stats().bytes_absorbed;
            assert_eq!(absorbed as usize, len, "whole lazy copy absorbed");
            // Discard the lazy task — U is never materialized.
            lib.abort(&core, u, len).await;
            lib.csync_all(&core).await.unwrap();
            assert_eq!(svc.stats().aborts, 1);
            svc.stop();
        });
        w.sim.run();
    }

    #[test]
    fn fault_poisons_descriptor_and_signals() {
        let mut w = world(CopierConfig::default());
        let space = AddressSpace::new(1, Rc::clone(&w.pm));
        let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
        let core = w.machine.core(0);
        let space2 = Rc::clone(&space);
        let svc = Rc::clone(&w.svc);
        w.sim.spawn("app", async move {
            let dst = space2.mmap(4096, Prot::RW, true).unwrap();
            // Source range was never mapped: proactive fault handling must
            // reject it and deliver a simulated SIGSEGV.
            lib.amemcpy(&core, dst, VirtAddr(0x40), 4096).await.unwrap();
            let r = lib.csync(&core, dst, 4096).await;
            assert_eq!(r, Err(CopyFault::Segv));
            assert_eq!(lib.client.signals.borrow().as_slice(), &[CopyFault::Segv]);
            assert_eq!(svc.stats().faults, 1);
            svc.stop();
        });
        w.sim.run();
    }

    #[test]
    fn handlers_run_after_completion() {
        let mut w = world(CopierConfig::default());
        let space = AddressSpace::new(1, Rc::clone(&w.pm));
        let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
        let core = w.machine.core(0);
        let space2 = Rc::clone(&space);
        let svc = Rc::clone(&w.svc);
        let klog = Rc::new(RefCell::new(Vec::<&str>::new()));
        let klog2 = Rc::clone(&klog);
        w.sim.spawn("app", async move {
            let src = space2.mmap(4096, Prot::RW, true).unwrap();
            let dst = space2.mmap(4096, Prot::RW, true).unwrap();
            fill_pattern(&space2, src, 4096, 2);
            let klog3 = Rc::clone(&klog2);
            let kf = Handler::KFunc(Rc::new(move || klog3.borrow_mut().push("kfunc")));
            lib._amemcpy(
                &core,
                dst,
                src,
                4096,
                AmemcpyOpts {
                    func: Some(kf),
                    ..AmemcpyOpts::default()
                },
            )
            .await
            .unwrap();
            lib.csync(&core, dst, 4096).await.unwrap();
            let klog4 = Rc::clone(&klog2);
            let uf = Handler::UFunc(Rc::new(move || klog4.borrow_mut().push("ufunc")));
            lib._amemcpy(
                &core,
                dst,
                src,
                4096,
                AmemcpyOpts {
                    func: Some(uf),
                    ..AmemcpyOpts::default()
                },
            )
            .await
            .unwrap();
            lib.csync_all(&core).await.unwrap();
            assert_eq!(*klog2.borrow(), vec!["kfunc", "ufunc"]);
            svc.stop();
        });
        w.sim.run();
        assert_eq!(*klog.borrow(), vec!["kfunc", "ufunc"]);
    }

    #[test]
    fn kernel_section_orders_across_privileges() {
        // Kernel submits K: S → X inside a trap; user then submits U: X → Y.
        // Barrier keys must order K before U even though they sit in
        // different rings; the data must flow S → X → Y.
        let mut w = world(CopierConfig {
            absorption: false, // force both copies to actually execute
            ..CopierConfig::default()
        });
        let space = AddressSpace::new(1, Rc::clone(&w.pm));
        let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
        let core = w.machine.core(0);
        let space2 = Rc::clone(&space);
        let svc = Rc::clone(&w.svc);
        w.sim.spawn("app", async move {
            let len = 8 * 1024;
            let s = space2.mmap(len, Prot::RW, true).unwrap();
            let x = space2.mmap(len, Prot::RW, true).unwrap();
            let y = space2.mmap(len, Prot::RW, true).unwrap();
            let data = fill_pattern(&space2, s, len, 8);
            {
                let sect = lib.kernel_section(0);
                sect.submit(&core, &space2, x, &space2, s, len, None, false)
                    .await
                    .unwrap();
                sect.close(&core).await;
            }
            lib.amemcpy(&core, y, x, len).await.unwrap();
            lib.csync(&core, y, len).await.unwrap();
            let mut out = vec![0u8; len];
            space2.read_bytes(y, &mut out).unwrap();
            assert_eq!(out, data);
            svc.stop();
        });
        w.sim.run();
    }

    #[test]
    fn amemmove_overlapping_forward_is_correct() {
        let mut w = world(CopierConfig::default());
        let space = AddressSpace::new(1, Rc::clone(&w.pm));
        let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
        let core = w.machine.core(0);
        let space2 = Rc::clone(&space);
        let svc = Rc::clone(&w.svc);
        w.sim.spawn("app", async move {
            let len = 32 * 1024;
            let base = space2.mmap(len + 8 * 1024, Prot::RW, true).unwrap();
            let data = fill_pattern(&space2, base, len, 13);
            // Move forward by 8 KB — overlapping.
            lib.amemmove(&core, base.add(8 * 1024), base, len)
                .await
                .unwrap();
            lib.csync(&core, base.add(8 * 1024), len).await.unwrap();
            let mut out = vec![0u8; len];
            space2.read_bytes(base.add(8 * 1024), &mut out).unwrap();
            assert_eq!(out, data);
            svc.stop();
        });
        w.sim.run();
    }

    #[test]
    fn multi_client_fairness_by_copy_length() {
        // Two clients flood the service; served bytes must be balanced
        // (CFS by copy length, §4.5.3).
        let mut w = world(CopierConfig::default());
        let core_app = w.machine.core(0);
        let svc = Rc::clone(&w.svc);
        let mut libs = Vec::new();
        for id in 0..2u32 {
            let space = AddressSpace::new(id + 1, Rc::clone(&w.pm));
            libs.push((CopierHandle::new(&w.svc, Rc::clone(&space)), space));
        }
        let h = w.sim.handle();
        w.sim.spawn("driver", async move {
            let len = 32 * 1024;
            let mut bufs = Vec::new();
            for (lib, space) in &libs {
                let src = space.mmap(len, Prot::RW, true).unwrap();
                let dst_area = space.mmap(len * 8, Prot::RW, true).unwrap();
                fill_pattern(space, src, len, 1);
                for i in 0..8 {
                    lib.amemcpy(&core_app, dst_area.add(i * len), src, len)
                        .await
                        .unwrap();
                }
                bufs.push((Rc::clone(lib), dst_area));
            }
            h.sleep(Nanos::from_millis(2)).await;
            for (lib, dst) in &bufs {
                lib.csync(&core_app, *dst, len * 8).await.unwrap();
            }
            let a = libs[0].0.client.copied_total.get();
            let b = libs[1].0.client.copied_total.get();
            assert_eq!(a, b, "equal work → equal served bytes");
            svc.stop();
        });
        w.sim.run();
    }
}
