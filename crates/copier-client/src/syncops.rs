//! Synchronous copy baselines.
//!
//! These are the `memcpy` paths Copier is compared against: the userspace
//! AVX2 routine, the kernel ERMS routine, and a plain byte loop. They move
//! real bytes through the simulated address spaces, charge the calling
//! core the modeled cost, handle page faults inline (the baseline pays
//! them on the critical path), and pollute the caller's cache model.

use std::rc::Rc;

use copier_hw::{CostModel, CpuCopyKind};
use copier_mem::{AddressSpace, FaultWork, MemError, VirtAddr, PAGE_SIZE};
use copier_sim::{Core, Nanos};

/// Synchronous copy between (possibly different) address spaces.
///
/// Charges `kind`'s cost curve plus inline fault handling, performs the
/// real data movement, and returns the fault work for diagnostics.
#[allow(clippy::too_many_arguments)]
pub async fn sync_copy(
    core: &Rc<Core>,
    cost: &Rc<CostModel>,
    kind: CpuCopyKind,
    dst_space: &Rc<AddressSpace>,
    dst: VirtAddr,
    src_space: &Rc<AddressSpace>,
    src: VirtAddr,
    len: usize,
) -> Result<FaultWork, MemError> {
    let mut work = FaultWork::default();
    let pm = dst_space.phys();
    let mut done = 0usize;
    while done < len {
        let s = src.add(done);
        let d = dst.add(done);
        let (sf, w1) = src_space.resolve(s, false)?;
        let (df, w2) = dst_space.resolve(d, true)?;
        work.add(w1);
        work.add(w2);
        let take = (len - done)
            .min(PAGE_SIZE - s.page_off())
            .min(PAGE_SIZE - d.page_off());
        pm.copy(df, d.page_off(), sf, s.page_off(), take);
        done += take;
    }
    let mut t = cost.cpu_copy(kind, len);
    let faults = (work.demand_zero + work.cow_remap + work.cow_copy) as u64;
    if faults > 0 {
        t += Nanos(cost.page_fault.as_nanos() * faults);
        t += cost.cpu_copy(CpuCopyKind::Avx2, work.bytes_copied);
    }
    core.advance(t).await;
    core.cache.note_inline_copy(len);
    Ok(work)
}

/// Synchronous copy within one address space (the libc `memcpy` shape).
pub async fn sync_memcpy(
    core: &Rc<Core>,
    cost: &Rc<CostModel>,
    space: &Rc<AddressSpace>,
    dst: VirtAddr,
    src: VirtAddr,
    len: usize,
) -> Result<FaultWork, MemError> {
    sync_copy(core, cost, CpuCopyKind::Avx2, space, dst, space, src, len).await
}

/// Synchronous `memmove`: correct for overlapping ranges.
pub async fn sync_memmove(
    core: &Rc<Core>,
    cost: &Rc<CostModel>,
    space: &Rc<AddressSpace>,
    dst: VirtAddr,
    src: VirtAddr,
    len: usize,
) -> Result<FaultWork, MemError> {
    let overlap = dst.0 < src.0 + len as u64 && src.0 < dst.0 + len as u64;
    if !overlap || dst.0 <= src.0 {
        // Forward copy is safe when dst precedes src.
        return sync_copy(core, cost, CpuCopyKind::Avx2, space, dst, space, src, len).await;
    }
    // Backward copy through a bounce buffer (simple and correct; the cost
    // charged is still a single traversal).
    let mut buf = vec![0u8; len];
    space.read_bytes(src, &mut buf)?;
    space.write_bytes(dst, &buf)?;
    core.advance(cost.cpu_copy(CpuCopyKind::Avx2, len)).await;
    core.cache.note_inline_copy(len);
    Ok(FaultWork::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::{AllocPolicy, PhysMem, Prot};
    use copier_sim::{Machine, Sim};

    #[test]
    fn sync_copy_moves_bytes_and_charges() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 1);
        let pm = Rc::new(PhysMem::new(64, AllocPolicy::Scattered));
        let space = AddressSpace::new(1, pm);
        let cost = Rc::new(CostModel::default());
        let core = m.core(0);
        let h2 = h.clone();
        sim.spawn("t", async move {
            let src = space.mmap(8192, Prot::RW, false).unwrap();
            let dst = space.mmap(8192, Prot::RW, false).unwrap();
            let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
            space.write_bytes(src, &data).unwrap();
            let t0 = h2.now();
            let w = sync_memcpy(&core, &cost, &space, dst, src, 5000)
                .await
                .unwrap();
            // Demand-zero faults on the destination were paid inline.
            assert!(w.demand_zero >= 1);
            assert!(h2.now() - t0 >= cost.cpu_copy(CpuCopyKind::Avx2, 5000));
            let mut out = vec![0u8; 5000];
            space.read_bytes(dst, &mut out).unwrap();
            assert_eq!(out, data);
        });
        sim.run();
    }

    #[test]
    fn sync_memmove_overlapping_forward() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 1);
        let pm = Rc::new(PhysMem::new(64, AllocPolicy::Sequential));
        let space = AddressSpace::new(1, pm);
        let cost = Rc::new(CostModel::default());
        let core = m.core(0);
        sim.spawn("t", async move {
            let base = space.mmap(8192, Prot::RW, true).unwrap();
            let data: Vec<u8> = (0..4096).map(|i| (i % 199) as u8).collect();
            space.write_bytes(base, &data).unwrap();
            // Move forward by 100 bytes (dst > src, overlapping).
            sync_memmove(&core, &cost, &space, base.add(100), base, 4096)
                .await
                .unwrap();
            let mut out = vec![0u8; 4096];
            space.read_bytes(base.add(100), &mut out).unwrap();
            assert_eq!(out, data);
        });
        sim.run();
    }

    #[test]
    fn segv_propagates() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 1);
        let pm = Rc::new(PhysMem::new(64, AllocPolicy::Sequential));
        let space = AddressSpace::new(1, pm);
        let cost = Rc::new(CostModel::default());
        let core = m.core(0);
        sim.spawn("t", async move {
            let r = sync_memcpy(&core, &cost, &space, VirtAddr(0x10), VirtAddr(0x20), 16).await;
            assert!(matches!(r, Err(MemError::Segv(_))));
        });
        sim.run();
    }
}
