//! Service-management features end to end: thread auto-scaling (§4.5.1),
//! cgroup `copier.shares` isolation (§4.5.2), queue backpressure,
//! scenario-driven activation (§5.3), and `shm_descr_bind` (Table 2).

use std::rc::Rc;

use copier_client::CopierHandle;
use copier_core::{Copier, CopierConfig, PollMode};
use copier_hw::CostModel;
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, Prot};
use copier_sim::{Machine, Nanos, Sim};

fn world(cores: usize, cfg: CopierConfig) -> (Sim, Rc<Machine>, Rc<PhysMem>, Rc<Copier>) {
    let sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, cores);
    let pm = Rc::new(PhysMem::new(65536, AllocPolicy::Scattered));
    let svc_cores = (1..cores).map(|i| machine.core(i)).collect();
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        svc_cores,
        Rc::new(CostModel::default()),
        cfg,
    );
    svc.start();
    (sim, machine, pm, svc)
}

#[test]
fn auto_scaling_adds_threads_under_load_and_sheds_them() {
    let (mut sim, machine, pm, svc) = world(
        4,
        CopierConfig {
            auto_scale: true,
            high_load: 256 * 1024,
            low_load: 8 * 1024,
            ..Default::default()
        },
    );
    assert_eq!(svc.active_threads(), 1, "auto-scale starts at one thread");
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let svc2 = Rc::clone(&svc);
    let h = sim.handle();
    let peak = Rc::new(std::cell::Cell::new(0usize));
    let peak2 = Rc::clone(&peak);
    sim.spawn("load", async move {
        let len = 256 * 1024;
        let src = space.mmap(len, Prot::RW, true).unwrap();
        // Sustained heavy load: many large copies to distinct buffers.
        let mut dsts = Vec::new();
        for _ in 0..24 {
            let dst = space.mmap(len, Prot::RW, true).unwrap();
            lib.amemcpy(&core, dst, src, len).await.expect("admitted");
            dsts.push(dst);
            peak2.set(peak2.get().max(svc2.active_threads()));
        }
        for dst in &dsts {
            lib.csync(&core, *dst, len).await.unwrap();
            peak2.set(peak2.get().max(svc2.active_threads()));
        }
        // Idle: give the monitor time to shed threads.
        h.sleep(Nanos::from_millis(2)).await;
        lib.amemcpy(&core, dsts[0], src, 4096)
            .await
            .expect("admitted");
        lib.csync(&core, dsts[0], 4096).await.unwrap();
        h.sleep(Nanos::from_millis(2)).await;
        svc2.stop();
    });
    sim.run();
    assert!(
        peak.get() > 1,
        "sustained load should wake extra threads (peak {})",
        peak.get()
    );
    assert_eq!(svc.active_threads(), 1, "idle sheds back to one");
}

#[test]
fn cgroup_shares_divide_service_bandwidth() {
    let (mut sim, machine, pm, svc) = world(2, CopierConfig::default());
    // Two clients in cgroups with a 3:1 copier.shares ratio.
    let fast_g = svc.sched.create_cgroup("fast", 3072);
    let slow_g = svc.sched.create_cgroup("slow", 1024);
    let spaces: Vec<_> = (0..2)
        .map(|i| AddressSpace::new(i + 1, Rc::clone(&pm)))
        .collect();
    let libs: Vec<_> = spaces
        .iter()
        .map(|s| CopierHandle::new(&svc, Rc::clone(s)))
        .collect();
    libs[0].client.cgroup.set(fast_g);
    libs[1].client.cgroup.set(slow_g);
    let core = machine.core(0);
    let svc2 = Rc::clone(&svc);
    let h = sim.handle();
    let served = Rc::new(std::cell::Cell::new((0u64, 0u64)));
    let served2 = Rc::clone(&served);
    sim.spawn("load", async move {
        let len = 64 * 1024;
        // Keep both clients saturated with outstanding work.
        let mut bufs = Vec::new();
        for lib in &libs {
            let src = lib.uspace.mmap(len, Prot::RW, true).unwrap();
            let dsts: Vec<_> = (0..16)
                .map(|_| lib.uspace.mmap(len, Prot::RW, true).unwrap())
                .collect();
            bufs.push((src, dsts));
        }
        for round in 0..16 {
            for (lib, (src, dsts)) in libs.iter().zip(&bufs) {
                lib.amemcpy(&core, dsts[round], *src, len)
                    .await
                    .expect("admitted");
            }
        }
        // Let the service run for a bounded window, then compare shares.
        h.sleep(Nanos::from_micros(120)).await;
        served2.set((
            libs[0].client.copied_total.get(),
            libs[1].client.copied_total.get(),
        ));
        // Drain fully before teardown.
        for lib in &libs {
            lib.csync_all(&core).await.unwrap();
        }
        svc2.stop();
    });
    sim.run();
    let (fast, slow) = served.get();
    assert!(fast > 0 && slow > 0, "both cgroups make progress");
    let ratio = fast as f64 / slow as f64;
    assert!(
        (1.8..=4.5).contains(&ratio),
        "3:1 shares should yield ~3:1 service: got {fast} vs {slow} ({ratio:.2})"
    );
}

#[test]
fn queue_backpressure_spins_submitter_without_loss() {
    let (mut sim, machine, pm, svc) = world(
        2,
        CopierConfig {
            queue_cap: 8, // tiny ring → guaranteed overflow
            ..Default::default()
        },
    );
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let svc2 = Rc::clone(&svc);
    sim.spawn("flood", async move {
        let len = 32 * 1024;
        let src = space.mmap(len, Prot::RW, true).unwrap();
        space.write_bytes(src, &vec![3u8; len]).unwrap();
        let mut dsts = Vec::new();
        for _ in 0..64 {
            let dst = space.mmap(len, Prot::RW, true).unwrap();
            // Backs off (bounded) when the ring is full, then succeeds.
            lib.amemcpy(&core, dst, src, len).await.expect("admitted");
            dsts.push(dst);
        }
        lib.csync_all(&core).await.unwrap();
        for dst in dsts {
            let mut b = [0u8; 8];
            space.read_bytes(dst, &mut b).unwrap();
            assert_eq!(b, [3u8; 8]);
        }
        svc2.stop();
    });
    sim.run();
    assert_eq!(svc.stats().tasks_completed, 64, "nothing lost to overflow");
}

#[test]
fn scenario_driven_service_sleeps_until_activated() {
    let (mut sim, machine, pm, svc) = world(
        2,
        CopierConfig {
            polling: PollMode::ScenarioDriven,
            ..Default::default()
        },
    );
    svc.set_scenario_active(false);
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let svc2 = Rc::clone(&svc);
    let h = sim.handle();
    sim.spawn("app", async move {
        let src = space.mmap(4096, Prot::RW, true).unwrap();
        let dst = space.mmap(4096, Prot::RW, true).unwrap();
        space.write_bytes(src, b"scenario").unwrap();
        lib.amemcpy(&core, dst, src, 4096).await.expect("admitted");
        // Service inactive: nothing should complete.
        h.sleep(Nanos::from_micros(300)).await;
        assert_eq!(svc2.stats().tasks_completed, 0, "asleep outside scenario");
        // Activate the scenario: the task completes promptly.
        svc2.set_scenario_active(true);
        lib.csync(&core, dst, 4096).await.unwrap();
        assert_eq!(svc2.stats().tasks_completed, 1);
        svc2.stop();
    });
    sim.run();
}

#[test]
fn shm_descr_bind_syncs_by_offset() {
    let (mut sim, machine, pm, svc) = world(2, CopierConfig::default());
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let svc2 = Rc::clone(&svc);
    sim.spawn("app", async move {
        // A shared region receiving two messages at different offsets.
        let shm = space.mmap(64 * 1024, Prot::RW, true).unwrap();
        let binding = lib.shm_descr_bind(shm, 64 * 1024);
        let src = space.mmap(16 * 1024, Prot::RW, true).unwrap();
        space.write_bytes(src, &vec![0x11; 16 * 1024]).unwrap();

        let d1 = lib
            .amemcpy(&core, shm, src, 16 * 1024)
            .await
            .expect("admitted");
        binding.attach(0, 16 * 1024, d1);
        let d2 = lib
            .amemcpy(&core, shm.add(32 * 1024), src, 16 * 1024)
            .await
            .expect("admitted");
        binding.attach(32 * 1024, 16 * 1024, d2);

        // Consumer side: sync by region offset, not by descriptor.
        binding.csync_shm(&lib, &core, 0, 1024).await.unwrap();
        let mut b = [0u8; 8];
        space.read_bytes(shm, &mut b).unwrap();
        assert_eq!(b, [0x11; 8]);
        binding
            .csync_shm(&lib, &core, 32 * 1024, 16 * 1024)
            .await
            .unwrap();
        space.read_bytes(shm.add(48 * 1024 - 8), &mut b).unwrap();
        assert_eq!(b, [0x11; 8]);
        lib.csync_all(&core).await.unwrap();
        svc2.stop();
    });
    sim.run();
}
