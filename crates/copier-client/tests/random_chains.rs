//! Property test: the service's absorption/reordering machinery is
//! *equivalent to synchronous execution* on randomized copy programs.
//!
//! We generate random sequences of overlapping copies, direct writes, and
//! interleaved csyncs over a handful of buffers; execute them (a) through
//! the full Copier service — absorption, deferral, promotion, piggyback
//! DMA and all — and (b) with a trivial synchronous interpreter; then
//! compare every buffer byte for byte. This is the implementation-level
//! counterpart of the Appendix A refinement model.

use std::rc::Rc;

use copier_client::CopierHandle;
use copier_core::{Copier, CopierConfig};
use copier_hw::CostModel;
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, Prot, VirtAddr};
use copier_sim::{Machine, Sim, SimRng};

const NBUF: usize = 4;
const BUF: usize = 8 * 1024;

#[derive(Debug, Clone)]
enum Step {
    /// amemcpy(buf[d] + doff, buf[s] + soff, len) — may overlap anything.
    Copy {
        d: usize,
        doff: usize,
        s: usize,
        soff: usize,
        len: usize,
    },
    /// Direct write after csync'ing the range (the guideline).
    Write {
        b: usize,
        off: usize,
        val: u8,
        len: usize,
    },
    /// csync a range.
    Sync { b: usize, off: usize, len: usize },
}

fn gen_program(rng: &SimRng, steps: usize) -> Vec<Step> {
    (0..steps)
        .map(|_| match rng.gen_range(5) {
            0 | 1 => {
                // Overlapping same-buffer src/dst would need amemmove
                // semantics (like memcpy, amemcpy leaves it undefined);
                // regenerate offsets until disjoint.
                let len = rng.range_usize(1, 3000);
                let d = rng.range_usize(0, NBUF);
                let s = rng.range_usize(0, NBUF);
                let (mut doff, mut soff);
                loop {
                    doff = rng.range_usize(0, BUF - len);
                    soff = rng.range_usize(0, BUF - len);
                    if d != s || doff + len <= soff || soff + len <= doff {
                        break;
                    }
                }
                Step::Copy {
                    d,
                    doff,
                    s,
                    soff,
                    len,
                }
            }
            2 | 3 => {
                let len = rng.range_usize(1, 64);
                Step::Write {
                    b: rng.range_usize(0, NBUF),
                    off: rng.range_usize(0, BUF - len),
                    val: rng.next_u64() as u8,
                    len,
                }
            }
            _ => {
                let len = rng.range_usize(1, 4000);
                Step::Sync {
                    b: rng.range_usize(0, NBUF),
                    off: rng.range_usize(0, BUF - len),
                    len,
                }
            }
        })
        .collect()
}

/// Reference semantics: everything synchronous, in submission order.
fn run_reference(prog: &[Step]) -> Vec<Vec<u8>> {
    let mut bufs: Vec<Vec<u8>> = (0..NBUF)
        .map(|i| (0..BUF).map(|j| ((i * 131 + j) % 251) as u8).collect())
        .collect();
    for st in prog {
        match *st {
            Step::Copy {
                d,
                doff,
                s,
                soff,
                len,
            } => {
                let tmp = bufs[s][soff..soff + len].to_vec();
                bufs[d][doff..doff + len].copy_from_slice(&tmp);
            }
            Step::Write { b, off, val, len } => {
                bufs[b][off..off + len].fill(val);
            }
            Step::Sync { .. } => {}
        }
    }
    bufs
}

/// Runs the program through the real service under `cfg`.
fn run_service(prog: Vec<Step>, cfg: CopierConfig) -> Vec<Vec<u8>> {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(
        4 * NBUF * BUF / 4096 + 64,
        AllocPolicy::Scattered,
    ));
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::new(CostModel::default()),
        cfg,
    );
    svc.start();
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let out = Rc::new(std::cell::RefCell::new(Vec::new()));
    let out2 = Rc::clone(&out);
    let svc2 = Rc::clone(&svc);
    let space2 = Rc::clone(&space);
    sim.spawn("driver", async move {
        let bases: Vec<VirtAddr> = (0..NBUF)
            .map(|_| space2.mmap(BUF, Prot::RW, true).unwrap())
            .collect();
        for (i, &va) in bases.iter().enumerate() {
            let init: Vec<u8> = (0..BUF).map(|j| ((i * 131 + j) % 251) as u8).collect();
            space2.write_bytes(va, &init).unwrap();
        }
        for st in prog {
            match st {
                Step::Copy {
                    d,
                    doff,
                    s,
                    soff,
                    len,
                } => {
                    // Guideline 1/4: the source about to be *read into this
                    // copy* must reflect prior state — submission order
                    // plus the service's hazard tracking handles it; the
                    // client only syncs before its own direct accesses.
                    lib.amemcpy(&core, bases[d].add(doff), bases[s].add(soff), len)
                        .await
                        .expect("admitted");
                }
                Step::Write { b, off, val, len } => {
                    // Guidelines: csync the destination range (and any
                    // pending copy reading this range) before writing.
                    lib.csync(&core, bases[b].add(off), len).await.unwrap();
                    // A write to a range some pending copy READS must also
                    // wait for those readers: sync every buffer that could
                    // read us. Conservative: csync_all is the documented
                    // blunt instrument.
                    lib.csync_all(&core).await.unwrap();
                    space2
                        .write_bytes(bases[b].add(off), &vec![val; len])
                        .unwrap();
                }
                Step::Sync { b, off, len } => {
                    lib.csync(&core, bases[b].add(off), len).await.unwrap();
                }
            }
        }
        lib.csync_all(&core).await.unwrap();
        let mut result = Vec::new();
        for &va in &bases {
            let mut buf = vec![0u8; BUF];
            space2.read_bytes(va, &mut buf).unwrap();
            result.push(buf);
        }
        *out2.borrow_mut() = result;
        svc2.stop();
    });
    sim.run();
    let r = out.borrow().clone();
    r
}

#[test]
fn random_programs_match_reference_with_absorption() {
    for seed in 0..12u64 {
        let rng = SimRng::new(seed);
        let prog = gen_program(&rng, 30);
        let expect = run_reference(&prog);
        let got = run_service(prog.clone(), CopierConfig::default());
        for b in 0..NBUF {
            assert_eq!(
                got[b], expect[b],
                "seed {seed}: buffer {b} diverged (absorption on)\nprog: {prog:#?}"
            );
        }
    }
}

#[test]
fn random_programs_match_reference_without_absorption() {
    for seed in 100..106u64 {
        let rng = SimRng::new(seed);
        let prog = gen_program(&rng, 30);
        let expect = run_reference(&prog);
        let got = run_service(
            prog.clone(),
            CopierConfig {
                absorption: false,
                ..Default::default()
            },
        );
        for b in 0..NBUF {
            assert_eq!(
                got[b], expect[b],
                "seed {seed}: buffer {b} (absorption off)"
            );
        }
    }
}

#[test]
fn random_programs_match_reference_without_dma() {
    for seed in 200..206u64 {
        let rng = SimRng::new(seed);
        let prog = gen_program(&rng, 30);
        let expect = run_reference(&prog);
        let got = run_service(
            prog.clone(),
            CopierConfig {
                use_dma: false,
                ..Default::default()
            },
        );
        for b in 0..NBUF {
            assert_eq!(got[b], expect[b], "seed {seed}: buffer {b} (no dma)");
        }
    }
}
