//! Operational semantics of the Appendix A state machine.
//!
//! Memory maps each address to a **value list**: pending `amemcpy`
//! operations append `(value, id)` pairs; `csync` truncates a list to the
//! latest value; ordinary reads/writes see only truncated values. The
//! transformation from the sync program inserts `csync` exactly per the
//! paper's five rules (§5.1 guidelines / Appendix A "program
//! transformation"), and the async interpreter executes pending copies
//! under different service schedules.

/// Memory size of the model (small on purpose — proptest explores it).
pub const MEM: usize = 16;

/// A program statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `memcpy(dst, src, len)` in the sync program; `amemcpy` after
    /// transformation.
    Copy {
        /// Destination address.
        dst: usize,
        /// Source address.
        src: usize,
        /// Length.
        len: usize,
    },
    /// A direct store.
    Write {
        /// Address.
        addr: usize,
        /// Value.
        val: u8,
    },
    /// A direct load whose value is *observable* (the refinement checks
    /// observations are identical).
    Read {
        /// Address.
        addr: usize,
    },
    /// Frees a range (models the post-copy handler's deallocation).
    Free {
        /// Address.
        addr: usize,
        /// Length.
        len: usize,
    },
    /// Inserted by [`transform`]: make `[addr, addr+len)` consistent.
    Csync {
        /// Address.
        addr: usize,
        /// Length.
        len: usize,
    },
}

/// A straight-line program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Statements in order.
    pub ops: Vec<Op>,
}

/// Execution result: final memory, observed reads, freed ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Final memory contents.
    pub memory: Vec<u8>,
    /// Values returned by `Read`s, in program order.
    pub observations: Vec<u8>,
    /// Ranges freed, in order.
    pub freed: Vec<(usize, usize)>,
}

/// Reference (synchronous) interpreter.
pub fn run_sync(p: &Program) -> Outcome {
    let mut mem = vec![0u8; MEM];
    let mut obs = Vec::new();
    let mut freed = Vec::new();
    for op in &p.ops {
        match *op {
            Op::Copy { dst, src, len } => {
                let tmp: Vec<u8> = mem[src..src + len].to_vec();
                mem[dst..dst + len].copy_from_slice(&tmp);
            }
            Op::Write { addr, val } => mem[addr] = val,
            Op::Read { addr } => obs.push(mem[addr]),
            Op::Free { addr, len } => freed.push((addr, len)),
            Op::Csync { .. } => {}
        }
    }
    Outcome {
        memory: mem,
        observations: obs,
        freed,
    }
}

/// Applies the Appendix A transformation: every `Copy` becomes async, and
/// a `Csync` is inserted before (1) reads/writes of a pending destination
/// and (2) writes to a pending source. (`Free` of a source is modeled by
/// rule 2 as well — our handler equivalence.)
pub fn transform(p: &Program) -> Program {
    let mut out = Vec::new();
    for (i, op) in p.ops.iter().enumerate() {
        // Which earlier copies are still "pending" (no intervening csync
        // inserted by us covers them)? Conservative: sync exactly the
        // ranges the guideline names, right before the access.
        match *op {
            Op::Read { addr } => {
                // Rule 3: reads of a pending destination sync first.
                if touches_pending(&p.ops[..i], addr, 1, false) {
                    out.push(Op::Csync { addr, len: 1 });
                }
            }
            Op::Write { addr, .. } => {
                // Rule 3 (dst) and rule 4 (writing a pending *source*
                // forces the dependent copies: csync_all is the
                // conservative form the guidelines allow).
                if touches_pending(&p.ops[..i], addr, 1, true) {
                    out.push(Op::Csync { addr: 0, len: MEM });
                }
            }
            Op::Free { addr, len } => {
                if touches_pending(&p.ops[..i], addr, len, true) {
                    out.push(Op::Csync { addr: 0, len: MEM });
                }
            }
            Op::Csync { .. } => {}
            Op::Copy { dst, src, len } => {
                // amemcpy itself reads src and writes dst asynchronously —
                // it does not count as an access (Appendix A), but rule 2
                // requires syncing a *source about to be overwritten* and
                // rule 1 a *destination about to be re-copied-from* is
                // handled by the service's own ordering; the model syncs
                // overlapping pending ranges to keep the per-address value
                // lists linear, mirroring the service's data-dependency
                // order (§4.2.2).
                if touches_pending(&p.ops[..i], dst, len, true)
                    || touches_pending(&p.ops[..i], src, len, true)
                {
                    out.push(Op::Csync { addr: 0, len: MEM });
                }
            }
        }
        out.push(op.clone());
    }
    // Program end: csync_all (descriptors must not outlive the program).
    out.push(Op::Csync { addr: 0, len: MEM });
    Program { ops: out }
}

/// The broken transformation (no csync at all) — used to show the
/// guidelines are load-bearing.
pub fn transform_without_csync(p: &Program) -> Program {
    let mut out = p.ops.clone();
    out.push(Op::Csync { addr: 0, len: MEM });
    Program { ops: out }
}

/// Whether `[addr, addr+len)` touches a pending copy's destination (or,
/// when `include_src`, a pending copy's source).
fn touches_pending(prefix: &[Op], addr: usize, len: usize, include_src: bool) -> bool {
    // A copy is pending until a csync covering its destination appears.
    let mut pending: Vec<(usize, usize, usize)> = Vec::new(); // (dst, len, src)
    for op in prefix {
        match *op {
            Op::Copy { dst, len: l, src } => pending.push((dst, l, src)),
            Op::Csync { addr: a, len: l } => {
                pending.retain(|&(d, dl, _)| !(a <= d && d + dl <= a + l));
            }
            _ => {}
        }
    }
    pending.iter().any(|&(d, l, s)| {
        (d < addr + len && addr < d + l) || (include_src && s < addr + len && addr < s + l)
    })
}

/// When the async service executes pending copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Copies execute immediately at submission.
    Eager,
    /// Copies execute only when a csync forces them.
    Lazy,
    /// Odd submissions eager, even lazy.
    Alternate,
    /// Each submission flips a deterministic coin from this seed —
    /// refinement must hold under *every* service schedule, so the
    /// tests sweep many seeds to sample the exponential schedule space.
    Seeded(u64),
}

/// splitmix64 step for [`Schedule::Seeded`] coin flips (kept local so
/// the model crate stays dependency-free).
fn schedule_coin(state: &mut u64) -> bool {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 1 == 1
}

/// The async machine state: per-address value lists.
pub struct AsyncState {
    /// `mem[a]` = committed value.
    mem: Vec<u8>,
    /// Uncommitted writes: `(addr, value, amemcpy id)`.
    list: Vec<(usize, u8, u64)>,
    /// Pending copies not yet executed: `(dst, src, len, id)`.
    queue: Vec<(usize, usize, usize, u64)>,
    next_id: u64,
}

impl AsyncState {
    fn latest(&self, addr: usize) -> u8 {
        self.list
            .iter()
            .rev()
            .find(|&&(a, _, _)| a == addr)
            .map(|&(_, v, _)| v)
            .unwrap_or(self.mem[addr])
    }

    /// Executes one queued amemcpy: reads see latest values, writes append
    /// to the value lists (Appendix A "semantics modelling").
    fn execute_one(&mut self, qi: usize) {
        let (dst, src, len, id) = self.queue.remove(qi);
        let vals: Vec<u8> = (0..len).map(|k| self.latest(src + k)).collect();
        for (k, v) in vals.into_iter().enumerate() {
            self.list.push((dst + k, v, id));
        }
    }

    /// csync: executes every queued copy overlapping the range (in order),
    /// then truncates the value lists in the range to their latest value.
    fn csync(&mut self, addr: usize, len: usize) {
        loop {
            let qi = self.queue.iter().position(|&(d, s, l, _)| {
                (d < addr + len && addr < d + l) || (s < addr + len && addr < s + l)
            });
            match qi {
                // Data dependency: earlier overlapping copies first (the
                // service's promotion closure).
                Some(i) => {
                    // Also force everything this one depends on.
                    self.force_deps(i);
                }
                None => break,
            }
        }
        // Truncate.
        let mut latest: Vec<Option<u8>> = vec![None; MEM];
        for &(a, v, _) in &self.list {
            if a >= addr && a < addr + len {
                latest[a] = Some(v);
            }
        }
        self.list
            .retain(|&(a, _, _)| !(a >= addr && a < addr + len));
        for (a, v) in latest.into_iter().enumerate() {
            if let Some(v) = v {
                self.mem[a] = v;
            }
        }
    }

    fn force_deps(&mut self, qi: usize) {
        // Execute queued copies before `qi` whose dst overlaps qi's src
        // (RAW) or dst (WAW), recursively — then qi itself.
        let (dst, src, len, _) = self.queue[qi];
        let dep = self.queue[..qi].iter().position(|&(d, _, l, _)| {
            (d < src + len && src < d + l) || (d < dst + len && dst < d + l)
        });
        if let Some(i) = dep {
            self.force_deps(i);
            // Indices shifted: recompute qi's position.
            return self.force_deps(
                self.queue
                    .iter()
                    .position(|&(d, s, l, _)| (d, s, l) == (dst, src, len))
                    .expect("still queued"),
            );
        }
        self.execute_one(qi);
    }
}

/// Runs a transformed program under a service schedule.
pub fn run_async(p: &Program, schedule: Schedule) -> Outcome {
    let mut st = AsyncState {
        mem: vec![0u8; MEM],
        list: Vec::new(),
        queue: Vec::new(),
        next_id: 1,
    };
    let mut obs = Vec::new();
    let mut freed = Vec::new();
    let mut coin_state = match schedule {
        Schedule::Seeded(seed) => seed,
        _ => 0,
    };
    for op in &p.ops {
        match *op {
            Op::Copy { dst, src, len } => {
                let id = st.next_id;
                st.next_id += 1;
                st.queue.push((dst, src, len, id));
                let eager = match schedule {
                    Schedule::Eager => true,
                    Schedule::Lazy => false,
                    Schedule::Alternate => id % 2 == 1,
                    Schedule::Seeded(_) => schedule_coin(&mut coin_state),
                };
                if eager {
                    let qi = st.queue.len() - 1;
                    st.force_deps(qi);
                }
            }
            Op::Write { addr, val } => {
                st.mem[addr] = val;
            }
            Op::Read { addr } => obs.push(st.mem[addr]),
            Op::Free { addr, len } => freed.push((addr, len)),
            Op::Csync { addr, len } => st.csync(addr, len),
        }
    }
    Outcome {
        memory: st.mem,
        observations: obs,
        freed,
    }
}
