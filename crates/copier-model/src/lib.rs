//! # copier-model — executable model of the Appendix A refinement proof
//!
//! The paper proves (with a rely-guarantee simulation) that a program
//! using `amemcpy` + `csync`, transformed per the §5.1 guidelines,
//! *refines* the same program using `memcpy`: no new behaviors are
//! introduced. This crate mechanizes the appendix's state machine —
//! per-address **value lists** tagged with amemcpy identifiers, `csync`
//! truncation to the latest value — and checks the consistency relation
//! on randomized programs with `copier-testkit`'s property runner,
//! under several service schedules (including seed-randomized ones).
//!
//! The model is deliberately tiny and separate from the real service: it
//! validates the *semantics*, while `copier-core`'s tests validate the
//! implementation.

pub mod semantics;

pub use semantics::{
    run_async, run_sync, transform, transform_without_csync, AsyncState, Op, Outcome, Program,
    Schedule, MEM,
};

#[cfg(test)]
mod refinement {
    use super::semantics::*;
    use copier_testkit::prop::{check_with, shrink_vec, Config};
    use copier_testkit::{prop_assert, prop_assert_eq, TestRng};

    fn arb_op(rng: &mut TestRng) -> Op {
        match rng.range_usize(0, 4) {
            0 => {
                let d = rng.range_usize(0, MEM);
                let s = rng.range_usize(0, MEM);
                let l = rng.range_usize(1, 8).min(MEM - d).min(MEM - s).max(1);
                Op::Copy {
                    dst: d,
                    src: s,
                    len: l,
                }
            }
            1 => Op::Write {
                addr: rng.range_usize(0, MEM),
                val: rng.next_u64() as u8,
            },
            2 => Op::Read {
                addr: rng.range_usize(0, MEM),
            },
            _ => {
                let a = rng.range_usize(0, MEM);
                Op::Free {
                    addr: a,
                    len: rng.range_usize(1, 6).min(MEM - a).max(1),
                }
            }
        }
    }

    fn arb_program(rng: &mut TestRng) -> Program {
        let len = rng.range_usize(1, 24);
        Program {
            ops: (0..len).map(|_| arb_op(rng)).collect(),
        }
    }

    /// Shrinks a counterexample program: drop ops structurally, then
    /// simplify individual ops (shorter lens, lower addrs, zero vals).
    fn shrink_program(p: &Program) -> Vec<Program> {
        shrink_vec(&p.ops, shrink_op)
            .into_iter()
            .filter(|ops| !ops.is_empty())
            .map(|ops| Program { ops })
            .collect()
    }

    fn shrink_op(op: &Op) -> Vec<Op> {
        let mut out = Vec::new();
        match *op {
            Op::Copy { dst, src, len } => {
                if len > 1 {
                    out.push(Op::Copy {
                        dst,
                        src,
                        len: len - 1,
                    });
                }
                if dst > 0 {
                    out.push(Op::Copy {
                        dst: dst - 1,
                        src,
                        len,
                    });
                }
                if src > 0 {
                    out.push(Op::Copy {
                        dst,
                        src: src - 1,
                        len,
                    });
                }
            }
            Op::Write { addr, val } => {
                if val != 0 {
                    out.push(Op::Write { addr, val: 0 });
                }
                if addr > 0 {
                    out.push(Op::Write {
                        addr: addr - 1,
                        val,
                    });
                }
            }
            Op::Read { addr } => {
                if addr > 0 {
                    out.push(Op::Read { addr: addr - 1 });
                }
            }
            Op::Free { addr, len } => {
                if len > 1 {
                    out.push(Op::Free { addr, len: len - 1 });
                }
                if addr > 0 {
                    out.push(Op::Free {
                        addr: addr - 1,
                        len,
                    });
                }
            }
            Op::Csync { .. } => {}
        }
        out
    }

    /// Schedules every refinement property must hold under: the three
    /// directed ones plus seed-randomized coins sampling the schedule
    /// space (2^copies interleavings per program).
    const SCHEDULES: [Schedule; 7] = [
        Schedule::Eager,
        Schedule::Lazy,
        Schedule::Alternate,
        Schedule::Seeded(0x1),
        Schedule::Seeded(0xBAD_5EED),
        Schedule::Seeded(0xFFFF_FFFF_FFFF_FFFF),
        Schedule::Seeded(0x1234_5678_9ABC_DEF0),
    ];

    /// The headline theorem: for any program, the async execution
    /// (amemcpy + csync inserted per the guidelines) observes exactly
    /// the reads of the sync execution and ends in the same state.
    #[test]
    fn async_with_csync_refines_sync() {
        check_with(
            &Config::from_env(),
            arb_program,
            shrink_program,
            |p: &Program| {
                let sync = run_sync(p);
                for schedule in SCHEDULES {
                    let a = run_async(&transform(p), schedule);
                    prop_assert_eq!(&sync.observations, &a.observations, "{:?}", schedule);
                    prop_assert_eq!(&sync.memory, &a.memory, "{:?}", schedule);
                    prop_assert_eq!(&sync.freed, &a.freed, "{:?}", schedule);
                }
                Ok(())
            },
        );
    }

    /// Refinement under *fresh* randomized schedules: the coin seed is
    /// drawn per case, so every run of the suite with a new
    /// `TESTKIT_SEED` explores schedules no directed list would.
    #[test]
    fn refines_sync_under_random_schedules() {
        check_with(
            &Config::from_env(),
            |rng: &mut TestRng| (arb_program(rng), rng.next_u64()),
            |(p, seed)| {
                shrink_program(p)
                    .into_iter()
                    .map(|sp| (sp, *seed))
                    .collect()
            },
            |(p, seed): &(Program, u64)| {
                let sync = run_sync(p);
                let a = run_async(&transform(p), Schedule::Seeded(*seed));
                prop_assert_eq!(&sync.observations, &a.observations, "seed {:#x}", seed);
                prop_assert_eq!(&sync.memory, &a.memory, "seed {:#x}", seed);
                prop_assert_eq!(&sync.freed, &a.freed, "seed {:#x}", seed);
                Ok(())
            },
        );
    }

    /// Without the csync insertion the machine stays memory-safe (no
    /// panics), though behaviors may diverge — the guidelines are
    /// load-bearing for equivalence, not for safety.
    #[test]
    fn no_csync_still_memory_safe() {
        check_with(
            &Config::from_env(),
            arb_program,
            shrink_program,
            |p: &Program| {
                let t = transform_without_csync(p);
                for schedule in SCHEDULES {
                    let _ = run_async(&t, schedule);
                }
                Ok(())
            },
        );
    }

    /// Directed Fig. 8 scenario: copy, client write into the pending
    /// destination, dependent copy — layered semantics must match sync.
    #[test]
    fn fig8_modified_intermediate() {
        let p = Program {
            ops: vec![
                Op::Write { addr: 0, val: 10 },
                Op::Write { addr: 1, val: 11 },
                Op::Copy {
                    dst: 4,
                    src: 0,
                    len: 2,
                }, // A→B
                Op::Write { addr: 4, val: 99 }, // modify part of B
                Op::Copy {
                    dst: 8,
                    src: 4,
                    len: 2,
                }, // B→C
                Op::Read { addr: 8 },
                Op::Read { addr: 9 },
            ],
        };
        let sync = run_sync(&p);
        assert_eq!(sync.observations, vec![99, 11]);
        for schedule in SCHEDULES {
            let a = run_async(&transform(&p), schedule);
            assert_eq!(sync.observations, a.observations, "{schedule:?}");
            assert_eq!(sync.memory, a.memory, "{schedule:?}");
        }
    }

    /// A lazy schedule actually defers: before the final csync_all the
    /// committed memory may lag, but observations never do.
    #[test]
    fn lazy_defers_until_sync() {
        let p = Program {
            ops: vec![
                Op::Write { addr: 0, val: 7 },
                Op::Copy {
                    dst: 8,
                    src: 0,
                    len: 1,
                },
                Op::Read { addr: 8 }, // transformed: csync before this read
            ],
        };
        let t = transform(&p);
        assert!(t.ops.iter().any(|o| matches!(o, Op::Csync { .. })));
        let a = run_async(&t, Schedule::Lazy);
        assert_eq!(a.observations, vec![7]);
    }

    /// The no-csync transformation demonstrably diverges on this program
    /// under the lazy schedule (the read sees stale memory).
    #[test]
    fn missing_csync_diverges() {
        let p = Program {
            ops: vec![
                Op::Write { addr: 0, val: 7 },
                Op::Copy {
                    dst: 8,
                    src: 0,
                    len: 1,
                },
                Op::Read { addr: 8 },
            ],
        };
        let sync = run_sync(&p);
        let a = run_async(&transform_without_csync(&p), Schedule::Lazy);
        assert_ne!(sync.observations, a.observations);
    }

    /// The shrinker in anger: a deliberately broken "specification"
    /// (reads never observe 7 after a copy) must shrink to the tiny
    /// write→copy→read core, demonstrating counterexample minimization
    /// on real model programs.
    #[test]
    fn shrinker_finds_minimal_divergence_program() {
        let planted = |p: &Program| -> copier_testkit::PropResult {
            let sync = run_sync(p);
            prop_assert!(
                !sync.observations.contains(&7),
                "observed 7: {:?}",
                sync.observations
            );
            Ok(())
        };
        let seed_program = Program {
            ops: vec![
                Op::Write { addr: 3, val: 9 },
                Op::Write { addr: 0, val: 7 },
                Op::Copy {
                    dst: 8,
                    src: 0,
                    len: 4,
                },
                Op::Free { addr: 2, len: 2 },
                Op::Read { addr: 8 },
                Op::Read { addr: 3 },
            ],
        };
        assert!(planted(&seed_program).is_err());
        let (minimal, _) = copier_testkit::minimize(seed_program, &shrink_program, &planted, 8192);
        // Minimal core: the write→copy→read chain with a length-1 copy —
        // every unrelated op (the free, the extra write/read) must have
        // been shrunk away, and the copy shortened to one byte.
        assert!(minimal.ops.len() <= 3, "not minimal: {:?}", minimal.ops);
        assert!(planted(&minimal).is_err());
        let _ = run_sync(&minimal); // still a valid program
    }

    /// prop_assert_ne smoke: sync and broken-async genuinely differ on
    /// a random program at least once across the case budget (the
    /// divergence shown directed above also appears under generation).
    #[test]
    fn random_programs_can_diverge_without_csync() {
        let mut rng = TestRng::new(0xD1FF);
        let mut diverged = false;
        for _ in 0..2000 {
            let p = arb_program(&mut rng);
            let sync = run_sync(&p);
            let a = run_async(&transform_without_csync(&p), Schedule::Lazy);
            if sync.observations != a.observations {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "no divergence found in 2000 random programs");
    }
}
