//! # copier-model — executable model of the Appendix A refinement proof
//!
//! The paper proves (with a rely-guarantee simulation) that a program
//! using `amemcpy` + `csync`, transformed per the §5.1 guidelines,
//! *refines* the same program using `memcpy`: no new behaviors are
//! introduced. This crate mechanizes the appendix's state machine —
//! per-address **value lists** tagged with amemcpy identifiers, `csync`
//! truncation to the latest value — and checks the consistency relation
//! on randomized programs with proptest, under several service schedules.
//!
//! The model is deliberately tiny and separate from the real service: it
//! validates the *semantics*, while `copier-core`'s tests validate the
//! implementation.

pub mod semantics;

pub use semantics::{
    run_async, run_sync, transform, transform_without_csync, AsyncState, Op, Outcome, Program,
    Schedule, MEM,
};

#[cfg(test)]
mod refinement {
    use super::semantics::*;
    use proptest::prelude::*;

    fn arb_program() -> impl Strategy<Value = Program> {
        let op = prop_oneof![
            (0usize..MEM, 0usize..MEM, 1usize..8).prop_map(|(d, s, l)| {
                let l = l.min(MEM - d).min(MEM - s).max(1);
                Op::Copy {
                    dst: d,
                    src: s,
                    len: l,
                }
            }),
            (0usize..MEM, any::<u8>()).prop_map(|(a, v)| Op::Write { addr: a, val: v }),
            (0usize..MEM).prop_map(|a| Op::Read { addr: a }),
            (0usize..MEM, 1usize..6).prop_map(|(a, l)| Op::Free {
                addr: a,
                len: l.min(MEM - a).max(1),
            }),
        ];
        prop::collection::vec(op, 1..24).prop_map(|ops| Program { ops })
    }

    proptest! {
        /// The headline theorem: for any program, the async execution
        /// (amemcpy + csync inserted per the guidelines) observes exactly
        /// the reads of the sync execution and ends in the same state.
        #[test]
        fn async_with_csync_refines_sync(p in arb_program()) {
            let sync = run_sync(&p);
            for schedule in [Schedule::Eager, Schedule::Lazy, Schedule::Alternate] {
                let a = run_async(&transform(&p), schedule);
                prop_assert_eq!(&sync.observations, &a.observations, "{:?}", schedule);
                prop_assert_eq!(&sync.memory, &a.memory, "{:?}", schedule);
                prop_assert_eq!(&sync.freed, &a.freed, "{:?}", schedule);
            }
        }

        /// Without the csync insertion the machine stays memory-safe (no
        /// panics), though behaviors may diverge — the guidelines are
        /// load-bearing for equivalence, not for safety.
        #[test]
        fn no_csync_still_memory_safe(p in arb_program()) {
            let t = transform_without_csync(&p);
            let _ = run_async(&t, Schedule::Lazy);
            let _ = run_async(&t, Schedule::Eager);
        }
    }

    /// Directed Fig. 8 scenario: copy, client write into the pending
    /// destination, dependent copy — layered semantics must match sync.
    #[test]
    fn fig8_modified_intermediate() {
        let p = Program {
            ops: vec![
                Op::Write { addr: 0, val: 10 },
                Op::Write { addr: 1, val: 11 },
                Op::Copy { dst: 4, src: 0, len: 2 }, // A→B
                Op::Write { addr: 4, val: 99 },      // modify part of B
                Op::Copy { dst: 8, src: 4, len: 2 }, // B→C
                Op::Read { addr: 8 },
                Op::Read { addr: 9 },
            ],
        };
        let sync = run_sync(&p);
        assert_eq!(sync.observations, vec![99, 11]);
        for schedule in [Schedule::Eager, Schedule::Lazy, Schedule::Alternate] {
            let a = run_async(&transform(&p), schedule);
            assert_eq!(sync.observations, a.observations, "{schedule:?}");
            assert_eq!(sync.memory, a.memory, "{schedule:?}");
        }
    }

    /// A lazy schedule actually defers: before the final csync_all the
    /// committed memory may lag, but observations never do.
    #[test]
    fn lazy_defers_until_sync() {
        let p = Program {
            ops: vec![
                Op::Write { addr: 0, val: 7 },
                Op::Copy { dst: 8, src: 0, len: 1 },
                Op::Read { addr: 8 }, // transformed: csync before this read
            ],
        };
        let t = transform(&p);
        assert!(t.ops.iter().any(|o| matches!(o, Op::Csync { .. })));
        let a = run_async(&t, Schedule::Lazy);
        assert_eq!(a.observations, vec![7]);
    }

    /// The no-csync transformation demonstrably diverges on this program
    /// under the lazy schedule (the read sees stale memory).
    #[test]
    fn missing_csync_diverges() {
        let p = Program {
            ops: vec![
                Op::Write { addr: 0, val: 7 },
                Op::Copy { dst: 8, src: 0, len: 1 },
                Op::Read { addr: 8 },
            ],
        };
        let sync = run_sync(&p);
        let a = run_async(&transform_without_csync(&p), Schedule::Lazy);
        assert_ne!(sync.observations, a.observations);
    }
}
