//! Minimal property-testing runner: seed-deterministic case generation,
//! greedy failure shrinking, and a fixed-seed regression mode.
//!
//! The shape mirrors what the workspace used from `proptest`, reduced to
//! what the suites actually need:
//!
//! * a property is a closure `Fn(&T) -> PropResult`; the
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]
//!   macros early-return an `Err(String)` on failure;
//! * generation is an arbitrary closure `Fn(&mut TestRng) -> T`
//!   (or the [`Arbitrary`] trait for common types);
//! * shrinking is a closure `Fn(&T) -> Vec<T>` returning *simpler*
//!   candidates — the runner greedily walks to a locally minimal
//!   counterexample before reporting;
//! * every case derives its own seed from the base seed, and a failure
//!   report prints `TESTKIT_REPRO=<case seed>` which replays exactly
//!   that case (with shrinking) regardless of case count.
//!
//! Environment knobs: `TESTKIT_CASES` (case count, default 256),
//! `TESTKIT_SEED` (base seed, default fixed — runs are deterministic
//! *by default*), `TESTKIT_REPRO` (single-case regression replay).

use crate::rng::{splitmix64, TestRng};

/// Outcome of a single property evaluation.
pub type PropResult = Result<(), String>;

/// Fails the surrounding property with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fails the surrounding property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `left == right` ({}:{})\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `left == right` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Fails the surrounding property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `left != right` ({}:{})\n  both: {:?}",
                file!(),
                line!(),
                l
            ));
        }
    }};
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; each case's seed derives from it.
    pub seed: u64,
    /// If set, run exactly one case with this seed (regression replay).
    pub repro: Option<u64>,
    /// Upper bound on shrink candidate evaluations.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            // Fixed by default: the suite is deterministic run-to-run.
            seed: 0xC0FF_EE5E_ED00_0001,
            repro: None,
            max_shrink_steps: 4096,
        }
    }
}

impl Config {
    /// Default config with `TESTKIT_CASES` / `TESTKIT_SEED` /
    /// `TESTKIT_REPRO` environment overrides applied.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(n) = env_u64("TESTKIT_CASES") {
            cfg.cases = n as u32;
        }
        if let Some(s) = env_u64("TESTKIT_SEED") {
            cfg.seed = s;
        }
        cfg.repro = env_u64("TESTKIT_REPRO");
        cfg
    }

    /// Single-case regression config for a seed printed by a failure.
    pub fn regression(case_seed: u64) -> Self {
        Config {
            repro: Some(case_seed),
            ..Config::default()
        }
    }
}

fn env_u64(key: &str) -> Option<u64> {
    let v = std::env::var(key).ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("{key}={v} is not a u64")))
}

/// Greedily shrinks a failing `value` to a locally minimal
/// counterexample: repeatedly takes the first still-failing candidate
/// until no candidate fails or the step budget runs out.
pub fn minimize<T, S, P>(value: T, shrink: &S, prop: &P, max_steps: u32) -> (T, u32)
where
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> PropResult,
{
    let mut cur = value;
    let mut steps = 0u32;
    'outer: loop {
        for cand in shrink(&cur) {
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if prop(&cand).is_err() {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    (cur, steps)
}

/// Runs `prop` on `cfg.cases` generated values, shrinking and panicking
/// on the first failure. The panic message includes the case seed and a
/// `TESTKIT_REPRO` line that replays the exact case.
pub fn check_with<T, G, S, P>(cfg: &Config, gen: G, shrink: S, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut TestRng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> PropResult,
{
    let run_case = |case: u32, case_seed: u64| {
        let mut rng = TestRng::new(case_seed);
        let value = gen(&mut rng);
        if prop(&value).is_ok() {
            return;
        }
        let (minimal, steps) = minimize(value, &shrink, &prop, cfg.max_shrink_steps);
        let err = prop(&minimal).expect_err("minimal counterexample must still fail");
        panic!(
            "property failed (case {case}, seed {case_seed:#x}, {steps} shrink steps)\n\
             minimal counterexample: {minimal:#?}\n\
             {err}\n\
             replay with: TESTKIT_REPRO={case_seed:#x} cargo test <this test>"
        );
    };

    if let Some(case_seed) = cfg.repro {
        run_case(0, case_seed);
        return;
    }
    let mut sm = cfg.seed;
    for case in 0..cfg.cases {
        run_case(case, splitmix64(&mut sm));
    }
}

/// Types with a canonical generator and shrinker.
pub trait Arbitrary: Sized + std::fmt::Debug + Clone {
    /// Generates a random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Simpler candidate values (empty = fully shrunk).
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// [`check_with`] using [`Arbitrary`] and `Config::from_env()`.
pub fn check<T: Arbitrary, P: Fn(&T) -> PropResult>(prop: P) {
    check_with(&Config::from_env(), T::arbitrary, T::shrink, prop);
}

macro_rules! arb_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            fn shrink(&self) -> Vec<Self> {
                // Halve toward zero, then decrement — classic integer ladder.
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(*self / 2);
                    out.push(*self - 1);
                    out.dedup();
                }
                out
            }
        }
    )+};
}
arb_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.range_usize(0, 33);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
    fn shrink(&self) -> Vec<Self> {
        shrink_vec(self, T::shrink)
    }
}

/// Shrink candidates for a vector: drop halves, drop one element,
/// shrink one element in place. Reusable for hand-written strategies.
pub fn shrink_vec<T: Clone, S: Fn(&T) -> Vec<T>>(v: &[T], shrink_elem: S) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.is_empty() {
        return out;
    }
    // Structural shrinks first — they remove the most at once. Halves
    // only when strictly smaller (len 1 would re-yield the whole vec).
    if v.len() >= 2 {
        out.push(v[..v.len() / 2].to_vec());
        out.push(v[v.len() / 2..].to_vec());
    }
    for i in 0..v.len() {
        let mut smaller = v.to_vec();
        smaller.remove(i);
        out.push(smaller);
    }
    for (i, elem) in v.iter().enumerate() {
        for cand in shrink_elem(elem) {
            let mut sv = v.to_vec();
            sv[i] = cand;
            out.push(sv);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        let cfg = Config {
            cases: 50,
            ..Config::default()
        };
        check_with(
            &cfg,
            |rng| rng.gen_range(100),
            |_| Vec::new(),
            |&v| {
                prop_assert!(v < 100);
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_panics_with_shrunk_counterexample() {
        let cfg = Config {
            cases: 64,
            ..Config::default()
        };
        let result = std::panic::catch_unwind(|| {
            check_with(
                &cfg,
                |rng: &mut TestRng| Vec::<u8>::arbitrary(rng),
                |v| shrink_vec(v, u8::shrink),
                |v: &Vec<u8>| {
                    prop_assert!(v.len() < 3, "planted failure");
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        // Greedy shrinking lands on the canonical minimal counterexample.
        assert!(msg.contains("minimal counterexample"), "{msg}");
        let flat: String = msg.split_whitespace().collect();
        assert!(
            flat.contains("[0,0,0,]") || flat.contains("[0,0,0]"),
            "not shrunk to three zeros: {msg}"
        );
    }

    #[test]
    fn integer_shrink_reaches_zero_ladder() {
        assert_eq!(8u32.shrink(), vec![4, 7]);
        assert_eq!(1u32.shrink(), vec![0]);
        assert!(0u32.shrink().is_empty());
    }

    #[test]
    fn minimize_on_planted_failure_is_minimal() {
        // Planted failing property: "v.len() < 3" — the minimal failing
        // Vec<u8> is exactly three zero bytes.
        let prop = |v: &Vec<u8>| -> PropResult {
            prop_assert!(v.len() < 3, "len {}", v.len());
            Ok(())
        };
        let start: Vec<u8> = vec![17, 200, 3, 9, 44, 250, 1];
        let (minimal, _) = minimize(start, &|v: &Vec<u8>| shrink_vec(v, u8::shrink), &prop, 4096);
        assert_eq!(minimal, vec![0, 0, 0]);
    }

    #[test]
    fn repro_mode_runs_the_given_seed() {
        // A property that only fails for one specific generated value;
        // repro with the failing case seed must hit it deterministically.
        let gen = |rng: &mut TestRng| rng.gen_range(1000);
        // Find a case seed whose generated value is, say, >= 990.
        let mut sm = 0xDEAD_BEEFu64;
        let case_seed = loop {
            let s = splitmix64(&mut sm);
            if gen(&mut TestRng::new(s)) >= 990 {
                break s;
            }
        };
        let cfg = Config::regression(case_seed);
        let result = std::panic::catch_unwind(|| {
            check_with(
                &cfg,
                gen,
                |_| Vec::new(),
                |&v| {
                    prop_assert!(v < 990);
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("TESTKIT_REPRO"), "{msg}");
        assert!(msg.contains(&format!("{case_seed:#x}")), "{msg}");
    }
}
