//! Submission-to-settle latency percentiles and per-tenant SLO
//! attainment (the soak benchmark's observability surface).
//!
//! A [`LatencyRecorder`] collects `(tenant, submit, settle)` samples in
//! virtual time, then answers percentile and SLO queries. Everything is
//! deterministic: samples are plain vectors, percentiles use the
//! nearest-rank (ceiling) definition (matching `copier-bench`'s
//! `stats()`), and no wall-clock or allocation-order state leaks into
//! any result. [`peak_rss_bytes`] is the one deliberately host-side
//! exception — the soak's memory-footprint metric — and is reported
//! alongside, never folded into, deterministic outputs.

use std::cell::RefCell;

/// Collects per-tenant submission-to-settle latency samples. Times are
/// raw virtual nanoseconds (`u64`) so the crate stays dependency-free;
/// harnesses convert from their `Nanos` at the call site.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    /// `(tenant, latency_ns)` per settled request, in settle order.
    samples: RefCell<Vec<(u32, u64)>>,
}

/// p50/p99/p999 summary over one sample population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile — the soak's headline tail metric.
    pub p999: u64,
    /// Maximum.
    pub max: u64,
    /// Sample count.
    pub n: usize,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one settled request. `settle` must not precede `submit`.
    pub fn record(&self, tenant: u32, submit: u64, settle: u64) {
        assert!(settle >= submit, "settle precedes submit");
        self.samples.borrow_mut().push((tenant, settle - submit));
    }

    /// Total samples recorded.
    pub fn len(&self) -> usize {
        self.samples.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.borrow().is_empty()
    }

    /// The raw `(tenant, latency)` samples in settle order — the
    /// bit-identity surface for determinism checks (two runs of the same
    /// seed must produce equal vectors, not just equal percentiles).
    pub fn samples(&self) -> Vec<(u32, u64)> {
        self.samples.borrow().clone()
    }

    /// Latency percentiles over every sample (all tenants pooled).
    /// Returns `None` on an empty recorder.
    pub fn percentiles(&self) -> Option<Percentiles> {
        let mut lat: Vec<u64> = self.samples.borrow().iter().map(|&(_, l)| l).collect();
        percentiles_of(&mut lat)
    }

    /// Latency percentiles for one tenant's samples.
    pub fn tenant_percentiles(&self, tenant: u32) -> Option<Percentiles> {
        let mut lat: Vec<u64> = self
            .samples
            .borrow()
            .iter()
            .filter(|&&(t, _)| t == tenant)
            .map(|&(_, l)| l)
            .collect();
        percentiles_of(&mut lat)
    }

    /// Per-tenant SLO attainment: for every tenant with at least one
    /// sample, the fraction of its samples at or under `slo`. Sorted by
    /// tenant id, so the result is deterministic.
    pub fn slo_attainment(&self, slo: u64) -> Vec<(u32, f64)> {
        let samples = self.samples.borrow();
        let mut per: std::collections::BTreeMap<u32, (u64, u64)> =
            std::collections::BTreeMap::new();
        for &(t, l) in samples.iter() {
            let e = per.entry(t).or_insert((0, 0));
            e.1 += 1;
            if l <= slo {
                e.0 += 1;
            }
        }
        per.into_iter()
            .map(|(t, (ok, n))| (t, ok as f64 / n as f64))
            .collect()
    }

    /// How many tenants meet `slo` on at least `target` of their
    /// samples (e.g. `target = 0.99` for a "99% of requests under X"
    /// SLO), out of the tenants that recorded anything.
    pub fn tenants_meeting(&self, slo: u64, target: f64) -> (usize, usize) {
        let att = self.slo_attainment(slo);
        let total = att.len();
        let met = att.iter().filter(|&&(_, f)| f >= target).count();
        (met, total)
    }
}

/// Nearest-rank (ceiling) percentiles over `lat` (sorts in place).
fn percentiles_of(lat: &mut [u64]) -> Option<Percentiles> {
    if lat.is_empty() {
        return None;
    }
    lat.sort_unstable();
    let n = lat.len();
    let pct = |p: f64| {
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        lat[rank - 1]
    };
    Some(Percentiles {
        p50: pct(0.50),
        p99: pct(0.99),
        p999: pct(0.999),
        max: lat[n - 1],
        n,
    })
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where that interface is missing.
/// Host-side observability for the soak's memory-footprint row — never
/// feed it into anything deterministic.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_ceiling_rank() {
        let r = LatencyRecorder::new();
        for i in 1..=2000u64 {
            r.record(0, 0, i);
        }
        let p = r.percentiles().unwrap();
        assert_eq!(p.p50, 1000);
        assert_eq!(p.p99, 1980);
        assert_eq!(p.p999, 1998);
        assert_eq!(p.max, 2000);
        assert_eq!(p.n, 2000);
    }

    #[test]
    fn small_populations_pin_p999_to_max() {
        let r = LatencyRecorder::new();
        for i in [5u64, 1, 3] {
            r.record(0, 10, 10 + i);
        }
        let p = r.percentiles().unwrap();
        assert_eq!(p.p999, 5);
        assert_eq!(p.max, 5);
    }

    #[test]
    fn slo_attainment_is_per_tenant_and_sorted() {
        let r = LatencyRecorder::new();
        // Tenant 0: 3/4 under 100. Tenant 7: 1/2 under 100.
        for l in [50u64, 80, 99, 150] {
            r.record(0, 0, l);
        }
        for l in [100u64, 101] {
            r.record(7, 0, l);
        }
        let att = r.slo_attainment(100);
        assert_eq!(att.len(), 2);
        assert_eq!(att[0].0, 0);
        assert!((att[0].1 - 0.75).abs() < 1e-12);
        assert_eq!(att[1].0, 7);
        assert!((att[1].1 - 0.5).abs() < 1e-12);
        assert_eq!(r.tenants_meeting(100, 0.75), (1, 2));
        assert_eq!(r.tenants_meeting(200, 0.99), (2, 2));
    }

    #[test]
    fn tenant_percentiles_filter() {
        let r = LatencyRecorder::new();
        r.record(1, 0, 10);
        r.record(2, 0, 1000);
        assert_eq!(r.tenant_percentiles(1).unwrap().max, 10);
        assert_eq!(r.tenant_percentiles(2).unwrap().max, 1000);
        assert!(r.tenant_percentiles(3).is_none());
    }

    #[test]
    fn peak_rss_parses_where_proc_exists() {
        // On Linux this must parse; elsewhere None is acceptable.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes().unwrap() > 0);
        }
    }
}
