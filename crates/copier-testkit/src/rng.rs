//! Seed-deterministic PRNG: splitmix64 seeding a xoshiro256++ core.
//!
//! Distinct from `copier_sim::SimRng` (xoshiro256**, interior
//! mutability, single-threaded workload generation): this generator is
//! `&mut self`-based and `Send`, so stress tests can hand each OS
//! thread its own independent stream via [`TestRng::fork`].

/// One step of the splitmix64 sequence (also used to derive seeds).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value (xoshiro256++ output function).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Splits off an independent generator (for per-thread streams).
    ///
    /// The child is seeded from this stream, so a parent seed fully
    /// determines every forked stream.
    pub fn fork(&mut self) -> TestRng {
        TestRng::new(self.next_u64())
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    /// Lemire's multiply-shift rejection method — no modulo bias.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let l = m as u64;
            if l >= bound || l >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range [{lo}, {hi})");
        lo + self.gen_range((hi - lo) as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fills a byte slice with pseudo-random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&b[..n]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            v.swap(i, j);
        }
    }

    /// Uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, v: &'a [T]) -> &'a T {
        assert!(!v.is_empty(), "choose on empty slice");
        &v[self.range_usize(0, v.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "{same} collisions in 64 draws");
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = TestRng::new(11);
        let mut parent2 = TestRng::new(11);
        let mut c1a = parent1.fork();
        let mut c1b = parent1.fork();
        let mut c2a = parent2.fork();
        // Same parent seed ⇒ same child stream.
        for _ in 0..64 {
            assert_eq!(c1a.next_u64(), c2a.next_u64());
        }
        // Sibling forks diverge.
        let mut c1a = TestRng::new(11).fork();
        let same = (0..64).filter(|_| c1a.next_u64() == c1b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = TestRng::new(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    fn range_usize_hits_both_ends() {
        let mut r = TestRng::new(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..500 {
            let x = r.range_usize(5, 8);
            assert!((5..8).contains(&x));
            lo_seen |= x == 5;
            hi_seen |= x == 7;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = TestRng::new(9);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = TestRng::new(5);
        let mut buf = [0u8; 23];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(buf[16..].iter().any(|&b| b != 0), "tail remainder filled");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = TestRng::new(6);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
