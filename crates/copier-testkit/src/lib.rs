//! # copier-testkit — hermetic, seed-deterministic test & bench substrate
//!
//! The repository's headline property is bit-for-bit determinism
//! (DESIGN §"deterministic discrete-event simulator"), so the test and
//! bench tooling must own every entropy and timing source rather than
//! pull them from external crates at registry-resolution time. This
//! crate replaces the three external dev-dependencies the workspace
//! used to carry:
//!
//! * [`rng`] replaces `rand` — a splitmix64-seeded **xoshiro256++**
//!   generator with the `gen_range` / `fill_bytes` / `shuffle` surface
//!   the tests need, plus `fork()` for independent per-thread streams.
//! * [`prop`] replaces `proptest` — a minimal property-testing runner:
//!   case generation from the PRNG, greedy failure shrinking, and a
//!   fixed-seed regression mode (`TESTKIT_REPRO`) so any reported
//!   counterexample replays exactly.
//! * [`bench`] replaces `criterion` — warmup, per-sample iteration
//!   calibration, and raw nanosecond samples that feed directly into
//!   `copier-bench`'s `stats()`.
//!
//! Everything is deterministic from a seed: the same `TESTKIT_SEED`
//! explores the same cases, and a failure line prints the one
//! environment variable needed to replay it.

pub mod bench;
pub mod latency;
pub mod prop;
pub mod rng;

pub use bench::{black_box, Bench, BenchResult};
pub use latency::{peak_rss_bytes, LatencyRecorder, Percentiles};
pub use prop::{check, check_with, minimize, shrink_vec, Arbitrary, Config, PropResult};
pub use rng::TestRng;

/// Asserts that a [`copier_mem::PhysMem`] has no pinned frames left.
///
/// Every test that drives copies through the service should call this in
/// its teardown: a frame still pinned after the workload settles means the
/// proactive-fault pin/unpin pairing (§4.5.4) leaked somewhere — the
/// kernel could then never reclaim the page.
#[track_caller]
pub fn assert_no_pinned_leaks(pm: &copier_mem::PhysMem) {
    let pinned = pm.pinned_frames();
    assert_eq!(
        pinned, 0,
        "pinned-frame leak: {pinned} frame(s) still pinned after teardown"
    );
}
