//! Tiny wall-clock bench harness replacing `criterion`.
//!
//! Model: calibrate an iteration count so one sample takes roughly
//! `sample_ms`, warm up for `warmup_ms`, then record `samples`
//! samples of mean per-iteration nanoseconds. The raw samples are
//! public so callers can feed them straight into `copier-bench`'s
//! `stats()` (`Vec<Nanos>`) for the same summary format the fig*
//! harnesses print.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Bench configuration: warmup length, sample count, target sample time.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Warmup duration before sampling (milliseconds).
    pub warmup_ms: u64,
    /// Number of recorded samples.
    pub samples: usize,
    /// Target wall-clock length of one sample (milliseconds); the
    /// harness calibrates iterations-per-sample to hit it.
    pub sample_ms: u64,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            warmup_ms: 200,
            samples: 20,
            sample_ms: 10,
        }
    }
}

/// Result of one bench run: per-iteration nanoseconds, one per sample.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench name.
    pub name: String,
    /// Calibrated iterations per sample.
    pub iters_per_sample: u64,
    /// Mean per-iteration nanoseconds of each sample.
    pub samples_ns: Vec<u64>,
}

impl BenchResult {
    /// Median per-iteration nanoseconds.
    pub fn median_ns(&self) -> u64 {
        let mut v = self.samples_ns.clone();
        v.sort_unstable();
        v[v.len() / 2]
    }

    /// Minimum per-iteration nanoseconds (least-noise estimate).
    pub fn min_ns(&self) -> u64 {
        *self.samples_ns.iter().min().expect("non-empty samples")
    }
}

impl Bench {
    /// Quick config for self-tests: minimal warmup and sample time.
    pub fn fast() -> Self {
        Bench {
            warmup_ms: 1,
            samples: 5,
            sample_ms: 1,
        }
    }

    /// Runs `f` under the harness and returns raw samples.
    pub fn run<F: FnMut()>(&self, name: &str, mut f: F) -> BenchResult {
        assert!(self.samples > 0, "need at least one sample");
        // Calibrate: grow the batch until it takes a measurable slice,
        // then scale to the target sample time.
        let mut batch: u64 = 1;
        let per_iter_ns = loop {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_micros(100) || batch >= 1 << 30 {
                break (elapsed.as_nanos() as u64 / batch).max(1);
            }
            batch *= 4;
        };
        let iters_per_sample = (self.sample_ms * 1_000_000 / per_iter_ns).clamp(1, 1 << 34);

        let warmup_deadline = Instant::now() + Duration::from_millis(self.warmup_ms);
        while Instant::now() < warmup_deadline {
            for _ in 0..batch {
                f();
            }
        }

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            samples_ns.push((t.elapsed().as_nanos() as u64 / iters_per_sample).max(1));
        }
        BenchResult {
            name: name.to_string(),
            iters_per_sample,
            samples_ns,
        }
    }

    /// Runs `f` and prints a one-line summary (median/min, sample count).
    pub fn run_and_print<F: FnMut()>(&self, name: &str, f: F) -> BenchResult {
        let r = self.run(name, f);
        println!(
            "  {name:<28} median={:>8}ns  min={:>8}ns  (n={}, {} iters/sample)",
            r.median_ns(),
            r.min_ns(),
            r.samples_ns.len(),
            r.iters_per_sample
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_samples() {
        let mut x = 0u64;
        let r = Bench::fast().run("spin", || {
            x = black_box(x.wrapping_add(1));
        });
        assert_eq!(r.samples_ns.len(), 5);
        assert!(r.iters_per_sample >= 1);
        assert!(r.samples_ns.iter().all(|&s| s >= 1));
        assert!(r.min_ns() <= r.median_ns());
    }

    #[test]
    fn slower_work_measures_slower() {
        let fast = Bench::fast().run("fast", || {
            black_box(1u64);
        });
        let slow = Bench::fast().run("slow", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc);
        });
        assert!(
            slow.median_ns() > fast.median_ns(),
            "slow {} <= fast {}",
            slow.median_ns(),
            fast.median_ns()
        );
    }
}
