//! End-to-end self-test of the public testkit surface — the guarantees
//! every other crate's tests now stand on.

use copier_testkit::prop::{check_with, minimize, shrink_vec, Arbitrary, Config};
use copier_testkit::{black_box, prop_assert, prop_assert_eq, Bench, TestRng};

#[test]
fn same_seed_identical_stream_across_surfaces() {
    let mut a = TestRng::new(0xABCD);
    let mut b = TestRng::new(0xABCD);
    let mut bytes_a = [0u8; 64];
    let mut bytes_b = [0u8; 64];
    a.fill_bytes(&mut bytes_a);
    b.fill_bytes(&mut bytes_b);
    assert_eq!(bytes_a, bytes_b);

    let mut va: Vec<u32> = (0..100).collect();
    let mut vb: Vec<u32> = (0..100).collect();
    a.shuffle(&mut va);
    b.shuffle(&mut vb);
    assert_eq!(va, vb);
    assert_eq!(a.gen_range(1 << 40), b.gen_range(1 << 40));
}

#[test]
fn distinct_seeds_diverge() {
    let mut a = TestRng::new(0x1000);
    let mut b = TestRng::new(0x1001);
    let collisions = (0..128).filter(|_| a.next_u64() == b.next_u64()).count();
    assert!(collisions < 2, "{collisions} collisions");
}

#[test]
fn gen_range_bounds_hold_under_property_check() {
    // The runner checking its own PRNG: bounds hold for random bounds.
    check_with(
        &Config {
            cases: 200,
            ..Config::default()
        },
        |rng| {
            let bound = rng.gen_range(1 << 32) + 1;
            let draws: Vec<u64> = (0..16).map(|_| rng.gen_range(bound)).collect();
            (bound, draws)
        },
        |_| Vec::new(),
        |(bound, draws)| {
            for &d in draws {
                prop_assert!(d < *bound, "draw {d} out of [0, {bound})");
            }
            Ok(())
        },
    );
}

#[test]
fn shrinking_reaches_minimal_counterexample() {
    // Planted failing property: "sum of the vector is < 10". The
    // minimal failing vector under the ladder shrinker is `[10]`.
    let prop = |v: &Vec<u8>| -> copier_testkit::PropResult {
        let sum: u32 = v.iter().map(|&b| b as u32).sum();
        prop_assert!(sum < 10, "sum {sum}");
        Ok(())
    };
    let start = vec![200u8, 31, 7, 150, 9];
    let (minimal, _) = minimize(start, &|v: &Vec<u8>| shrink_vec(v, u8::shrink), &prop, 8192);
    assert_eq!(minimal, vec![10]);
}

#[test]
fn arbitrary_vec_roundtrips_through_runner() {
    check_with(
        &Config {
            cases: 64,
            ..Config::default()
        },
        |rng| Vec::<u16>::arbitrary(rng),
        |v| v.shrink(),
        |v| {
            let doubled: Vec<u32> = v.iter().map(|&x| x as u32 * 2).collect();
            for (d, x) in doubled.iter().zip(v.iter()) {
                prop_assert_eq!(*d, *x as u32 * 2);
            }
            Ok(())
        },
    );
}

#[test]
fn bench_harness_is_usable_for_real_work() {
    let mut data = vec![0u8; 1024];
    let mut rng = TestRng::new(77);
    let r = Bench::fast().run("fill_1k", || {
        rng.fill_bytes(black_box(&mut data));
    });
    assert_eq!(r.samples_ns.len(), 5);
    assert!(data.iter().any(|&b| b != 0));
}
