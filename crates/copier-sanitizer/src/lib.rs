//! # copier-sanitizer — CopierSanitizer (§5.1.2)
//!
//! A shadow-memory misuse detector for the async-copy API, modeled on
//! AddressSanitizer's poisoning: `amemcpy` *poisons* both the source and
//! destination ranges; `csync` *unpoisons* the synced range; any tracked
//! access (read, write, free) to a poisoned byte is reported as a bug —
//! an omitted or misplaced csync.
//!
//! The real tool instruments compiled code; here applications (and the
//! integration tests) call the check hooks explicitly, which is what the
//! instrumentation would have emitted.

use std::cell::RefCell;
use std::collections::BTreeMap;

/// A reported misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// What the program did.
    pub kind: AccessKind,
    /// Offending address.
    pub addr: u64,
    /// Length of the access.
    pub len: usize,
    /// Which amemcpy poisoned it (submission index).
    pub copy_id: u64,
    /// Caller-provided context label.
    pub context: String,
}

/// The access that tripped the check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read of an un-synced destination (or source being overwritten).
    Read,
    /// Write to an un-synced range.
    Write,
    /// Free of a buffer with a pending copy.
    Free,
}

#[derive(Debug, Clone, Copy)]
struct Poison {
    end: u64,
    copy_id: u64,
    /// Sources are poisoned against *writes* only (reading a source
    /// while a copy is in flight is fine).
    write_only: bool,
}

/// The sanitizer state for one process.
#[derive(Default)]
pub struct Sanitizer {
    /// start → poison; disjoint ranges.
    shadow: RefCell<BTreeMap<u64, Poison>>,
    reports: RefCell<Vec<Report>>,
    next_id: std::cell::Cell<u64>,
}

impl Sanitizer {
    /// Creates an empty sanitizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hook: an `amemcpy(dst, src, len)` was submitted. Returns its id.
    pub fn on_amemcpy(&self, dst: u64, src: u64, len: usize) -> u64 {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        let mut sh = self.shadow.borrow_mut();
        sh.insert(
            dst,
            Poison {
                end: dst + len as u64,
                copy_id: id,
                write_only: false,
            },
        );
        sh.insert(
            src,
            Poison {
                end: src + len as u64,
                copy_id: id,
                write_only: true,
            },
        );
        id
    }

    /// Hook: `csync(addr, len)` completed — unpoison the range and the
    /// matching sources.
    pub fn on_csync(&self, addr: u64, len: usize) {
        let mut sh = self.shadow.borrow_mut();
        // Collect ids of dst poisons fully covered by this sync.
        let ids: Vec<u64> = sh
            .iter()
            .filter(|(&s, p)| !p.write_only && addr <= s && p.end <= addr + len as u64)
            .map(|(_, p)| p.copy_id)
            .collect();
        sh.retain(|&s, p| {
            let dst_covered = !p.write_only && addr <= s && p.end <= addr + len as u64;
            let src_of_synced = p.write_only && ids.contains(&p.copy_id);
            !(dst_covered || src_of_synced)
        });
    }

    /// Hook: `csync_all()` — clears every poison.
    pub fn on_csync_all(&self) {
        self.shadow.borrow_mut().clear();
    }

    fn check(&self, kind: AccessKind, addr: u64, len: usize, write: bool, context: &str) {
        let sh = self.shadow.borrow();
        for (&s, p) in sh.range(..addr + len as u64) {
            if p.end > addr && s < addr + len as u64 {
                if p.write_only && !write {
                    continue; // reading a pending source is allowed
                }
                self.reports.borrow_mut().push(Report {
                    kind,
                    addr,
                    len,
                    copy_id: p.copy_id,
                    context: context.to_string(),
                });
                return;
            }
        }
    }

    /// Hook: the program reads `[addr, addr+len)`.
    pub fn on_read(&self, addr: u64, len: usize, context: &str) {
        self.check(AccessKind::Read, addr, len, false, context);
    }

    /// Hook: the program writes `[addr, addr+len)`.
    pub fn on_write(&self, addr: u64, len: usize, context: &str) {
        self.check(AccessKind::Write, addr, len, true, context);
    }

    /// Hook: the program frees `[addr, addr+len)`.
    pub fn on_free(&self, addr: u64, len: usize, context: &str) {
        self.check(AccessKind::Free, addr, len, true, context);
    }

    /// All reports so far.
    pub fn reports(&self) -> Vec<Report> {
        self.reports.borrow().clone()
    }

    /// True when no misuse was detected.
    pub fn clean(&self) -> bool {
        self.reports.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_before_csync_is_reported() {
        let s = Sanitizer::new();
        s.on_amemcpy(0x1000, 0x2000, 64);
        s.on_read(0x1010, 8, "parse header");
        let r = s.reports();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].kind, AccessKind::Read);
        assert_eq!(r[0].context, "parse header");
    }

    #[test]
    fn read_after_csync_is_clean() {
        let s = Sanitizer::new();
        s.on_amemcpy(0x1000, 0x2000, 64);
        s.on_csync(0x1000, 64);
        s.on_read(0x1010, 8, "parse");
        assert!(s.clean());
    }

    #[test]
    fn partial_csync_leaves_rest_poisoned() {
        let s = Sanitizer::new();
        s.on_amemcpy(0x1000, 0x2000, 64);
        s.on_csync(0x1000, 16); // only a prefix — dst poison not covered
        s.on_read(0x1030, 4, "tail");
        assert_eq!(s.reports().len(), 1);
    }

    #[test]
    fn source_reads_allowed_writes_reported() {
        let s = Sanitizer::new();
        s.on_amemcpy(0x1000, 0x2000, 64);
        s.on_read(0x2000, 8, "src read"); // fine
        assert!(s.clean());
        s.on_write(0x2000, 8, "src overwrite"); // guideline 1 violation
        assert_eq!(s.reports().len(), 1);
    }

    #[test]
    fn free_of_pending_source_is_reported() {
        let s = Sanitizer::new();
        s.on_amemcpy(0x1000, 0x2000, 64);
        s.on_free(0x2000, 64, "free(src) without handler");
        let r = s.reports();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].kind, AccessKind::Free);
    }

    #[test]
    fn csync_all_clears_everything() {
        let s = Sanitizer::new();
        s.on_amemcpy(0x1000, 0x2000, 64);
        s.on_amemcpy(0x3000, 0x4000, 32);
        s.on_csync_all();
        s.on_write(0x2000, 8, "w");
        s.on_read(0x3000, 8, "r");
        assert!(s.clean());
    }

    #[test]
    fn syncing_the_dst_releases_its_source() {
        let s = Sanitizer::new();
        s.on_amemcpy(0x1000, 0x2000, 64);
        s.on_csync(0x1000, 64);
        s.on_write(0x2000, 8, "reuse src after sync");
        assert!(s.clean());
    }
}
