//! Randomized fuzz of the CopierSanitizer shadow-memory rules
//! (§5.1.2), generalizing the directed unit tests: random placements,
//! lengths, offsets, and interleavings must uphold the poisoning
//! contract — reads/writes/frees of an un-synced range are reported,
//! synced and never-poisoned ranges stay clean, and `csync_all`
//! amnesties everything.

use copier_sanitizer::{AccessKind, Sanitizer};
use copier_testkit::prop::{check_with, Config};
use copier_testkit::{prop_assert, prop_assert_eq, TestRng};

/// A random non-overlapping (dst, src, len) placement on a page grid,
/// mirroring how real callers carve buffers.
fn arb_copy(rng: &mut TestRng) -> (u64, u64, usize) {
    let len = rng.range_usize(1, 4096);
    // Distinct 64 KB slabs keep dst/src (and poison starts) disjoint.
    let mut slots = [0u64, 1, 2, 3];
    rng.shuffle(&mut slots);
    let base = 0x10_0000;
    (base + slots[0] * 0x1_0000, base + slots[1] * 0x1_0000, len)
}

#[test]
fn unsynced_dst_access_always_reported_then_csync_clears() {
    check_with(
        &Config::from_env(),
        |rng| {
            let (dst, src, len) = arb_copy(rng);
            let off = rng.range_usize(0, len);
            let alen = rng.range_usize(1, (len - off).max(1) + 1);
            (dst, src, len, off as u64, alen)
        },
        |_| Vec::new(),
        |&(dst, src, len, off, alen): &(u64, u64, usize, u64, usize)| {
            let s = Sanitizer::new();
            s.on_amemcpy(dst, src, len);
            s.on_read(dst + off, alen, "fuzz dst read");
            let reports = s.reports();
            prop_assert_eq!(reports.len(), 1, "dst {dst:#x}+{off} len {alen}");
            prop_assert_eq!(reports[0].kind, AccessKind::Read);
            // Full csync releases dst and its source for reuse.
            s.on_csync(dst, len);
            s.on_read(dst + off, alen, "after sync");
            s.on_write(src, 1, "src reuse after sync");
            prop_assert_eq!(s.reports().len(), 1, "no new reports after csync");
            Ok(())
        },
    );
}

#[test]
fn src_reads_allowed_src_writes_and_frees_reported() {
    check_with(
        &Config::from_env(),
        |rng| {
            let (dst, src, len) = arb_copy(rng);
            let off = rng.range_usize(0, len) as u64;
            let free_instead = rng.gen_bool(0.5);
            (dst, src, len, off, free_instead)
        },
        |_| Vec::new(),
        |&(dst, src, len, off, free_instead): &(u64, u64, usize, u64, bool)| {
            let s = Sanitizer::new();
            s.on_amemcpy(dst, src, len);
            s.on_read(src + off, 1, "src read in flight");
            prop_assert!(s.clean(), "reading a pending source must be allowed");
            if free_instead {
                s.on_free(src, len, "free pending src");
                prop_assert_eq!(s.reports().len(), 1);
                prop_assert_eq!(s.reports()[0].kind, AccessKind::Free);
            } else {
                s.on_write(src + off, 1, "overwrite pending src");
                prop_assert_eq!(s.reports().len(), 1);
                prop_assert_eq!(s.reports()[0].kind, AccessKind::Write);
            }
            Ok(())
        },
    );
}

#[test]
fn csync_all_amnesties_any_poison_set() {
    check_with(
        &Config::from_env(),
        |rng| {
            let copies = rng.range_usize(1, 8);
            let poisons: Vec<(u64, u64, usize)> = (0..copies)
                .map(|k| {
                    // Disjoint 1 MB regions per copy keep starts unique.
                    let region = 0x100_0000 * (k as u64 + 1);
                    let len = rng.range_usize(1, 8192);
                    (region, region + 0x80_0000, len)
                })
                .collect();
            let probes: Vec<(u64, usize)> = (0..16)
                .map(|_| {
                    let (d, s, l) = *rng.choose(&poisons);
                    let off = rng.gen_range(l as u64);
                    if rng.gen_bool(0.5) {
                        (d + off, rng.range_usize(1, 64))
                    } else {
                        (s + off, rng.range_usize(1, 64))
                    }
                })
                .collect();
            (poisons, probes)
        },
        |_| Vec::new(),
        |(poisons, probes): &(Vec<(u64, u64, usize)>, Vec<(u64, usize)>)| {
            let s = Sanitizer::new();
            for &(d, src, l) in poisons {
                s.on_amemcpy(d, src, l);
            }
            s.on_csync_all();
            for &(addr, len) in probes {
                s.on_read(addr, len, "post-amnesty read");
                s.on_write(addr, len, "post-amnesty write");
                s.on_free(addr, len, "post-amnesty free");
            }
            prop_assert!(s.clean(), "reports after csync_all: {:?}", s.reports());
            Ok(())
        },
    );
}

#[test]
fn partial_csync_keeps_uncovered_tail_poisoned() {
    check_with(
        &Config::from_env(),
        |rng| {
            let (dst, src, len) = arb_copy(rng);
            // Require room for a strict split and a tail probe.
            let len = len.max(2);
            let split = rng.range_usize(1, len);
            (dst, src, len, split)
        },
        |_| Vec::new(),
        |&(dst, src, len, split): &(u64, u64, usize, usize)| {
            let s = Sanitizer::new();
            s.on_amemcpy(dst, src, len);
            // Prefix-only sync does not cover the dst poison range, so
            // the whole destination stays poisoned (range semantics:
            // poisons clear only when fully covered).
            s.on_csync(dst, split);
            s.on_read(dst + split as u64, len - split, "tail after partial sync");
            prop_assert_eq!(s.reports().len(), 1, "split {split}/{len}");
            // Completing the sync clears it.
            s.on_csync(dst, len);
            s.on_read(dst, len, "after full sync");
            prop_assert_eq!(s.reports().len(), 1);
            Ok(())
        },
    );
}

/// Never-poisoned addresses stay clean under arbitrary access storms —
/// the sanitizer must not false-positive.
#[test]
fn unpoisoned_memory_never_reports() {
    check_with(
        &Config::from_env(),
        |rng| {
            let (dst, src, len) = arb_copy(rng);
            let accesses: Vec<(u64, usize)> = (0..32)
                .map(|_| {
                    // Far below the poisoned slabs.
                    (rng.gen_range(0xF000), rng.range_usize(1, 128))
                })
                .collect();
            (dst, src, len, accesses)
        },
        |_| Vec::new(),
        |(dst, src, len, accesses): &(u64, u64, usize, Vec<(u64, usize)>)| {
            let s = Sanitizer::new();
            s.on_amemcpy(*dst, *src, *len);
            for &(addr, alen) in accesses {
                s.on_read(addr, alen, "far read");
                s.on_write(addr, alen, "far write");
            }
            prop_assert!(s.clean(), "false positives: {:?}", s.reports());
            Ok(())
        },
    );
}
