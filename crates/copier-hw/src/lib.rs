//! # copier-hw — simulated copy hardware
//!
//! The heterogeneous copy units Copier harmonizes (§4.3 of the paper):
//!
//! * [`cost::CostModel`] — calibrated cost curves for AVX2 / ERMS /
//!   byte-loop CPU copies, DMA transfers, traps, faults, and queue ops;
//! * [`units`] — subtask splitting at physical-contiguity boundaries and
//!   the CPU copy unit (real data movement + modeled cost);
//! * [`dma::DmaEngine`] — an I/OAT-style asynchronous device;
//! * [`dispatch::Dispatcher`] — the piggyback scheduler pairing DMA with
//!   AVX so neither waits on the other;
//! * [`atcache::ATCache`] — generation-validated VA→PA translation cache.

pub mod atcache;
pub mod cost;
pub mod dispatch;
pub mod dma;
pub mod units;

pub use atcache::{ATCache, AtcStats};
pub use cost::{CopyCurve, CostModel, CpuCopyKind};
pub use dispatch::{DispatchReport, Dispatcher, PlannedCopy, ProgressFn, VerifyPolicy};
pub use dma::{DmaCompletion, DmaEngine, DmaError, DmaStats};
pub use units::{copy_extent_pair, slice_extents, split_subtasks, CpuUnit, SubTask};
