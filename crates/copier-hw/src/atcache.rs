//! Address Translation Cache (§4.3).
//!
//! Copy addresses show high locality (recycled buffer pools, fixed I/O
//! buffers — the paper measures >75% recurrence in Redis), so Copier caches
//! the VA→physical-extent translation of whole buffers. Entries are
//! validated against the owning address space's *generation*: any mapping
//! change bumps the generation and implicitly invalidates every cached
//! translation for that space.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};

use copier_mem::{AddressSpace, AsId, Extent, VirtAddr};

type Key = (AsId, u64, usize);

struct Entry {
    generation: u64,
    extents: Vec<Extent>,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtcStats {
    /// Lookups that returned a valid translation.
    pub hits: u64,
    /// Lookups that missed or found a stale generation.
    pub misses: u64,
}

/// A bounded FIFO translation cache.
pub struct ATCache {
    capacity: usize,
    map: RefCell<BTreeMap<Key, Entry>>,
    order: RefCell<VecDeque<Key>>,
    stats: Cell<AtcStats>,
    enabled: Cell<bool>,
}

impl ATCache {
    /// Creates a cache holding up to `capacity` buffer translations.
    pub fn new(capacity: usize) -> Self {
        ATCache {
            capacity: capacity.max(1),
            map: RefCell::new(BTreeMap::new()),
            order: RefCell::new(VecDeque::new()),
            stats: Cell::new(AtcStats::default()),
            enabled: Cell::new(true),
        }
    }

    /// Enables or disables the cache (for the Fig. 9 ablation).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.set(on);
        if !on {
            self.map.borrow_mut().clear();
            self.order.borrow_mut().clear();
        }
    }

    /// Looks up a cached translation, checking freshness via the space's
    /// current generation.
    pub fn lookup(&self, asp: &AddressSpace, va: VirtAddr, len: usize) -> Option<Vec<Extent>> {
        if !self.enabled.get() {
            return None;
        }
        let key = (asp.id(), va.0, len);
        let map = self.map.borrow();
        let hit = map
            .get(&key)
            .filter(|e| e.generation == asp.generation())
            .map(|e| e.extents.clone());
        drop(map);
        let mut s = self.stats.get();
        if hit.is_some() {
            s.hits += 1;
        } else {
            s.misses += 1;
        }
        self.stats.set(s);
        hit
    }

    /// Inserts a translation captured at the space's current generation.
    pub fn insert(&self, asp: &AddressSpace, va: VirtAddr, len: usize, extents: Vec<Extent>) {
        if !self.enabled.get() {
            return;
        }
        let key = (asp.id(), va.0, len);
        let mut map = self.map.borrow_mut();
        let mut order = self.order.borrow_mut();
        if map
            .insert(
                key,
                Entry {
                    generation: asp.generation(),
                    extents,
                },
            )
            .is_none()
        {
            order.push_back(key);
            while map.len() > self.capacity {
                if let Some(old) = order.pop_front() {
                    map.remove(&old);
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AtcStats {
        self.stats.get()
    }

    /// Resets the counters (entries are kept).
    pub fn reset_stats(&self) {
        self.stats.set(AtcStats::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::{AllocPolicy, PhysMem, Prot, PAGE_SIZE};
    use std::rc::Rc;

    fn space() -> Rc<AddressSpace> {
        let pm = Rc::new(PhysMem::new(64, AllocPolicy::Sequential));
        AddressSpace::new(1, pm)
    }

    #[test]
    fn hit_after_insert() {
        let asp = space();
        let va = asp.mmap(2 * PAGE_SIZE, Prot::RW, true).unwrap();
        let ex = asp.extents(va, 2 * PAGE_SIZE).unwrap();
        let atc = ATCache::new(8);
        assert!(atc.lookup(&asp, va, 2 * PAGE_SIZE).is_none());
        atc.insert(&asp, va, 2 * PAGE_SIZE, ex.clone());
        assert_eq!(atc.lookup(&asp, va, 2 * PAGE_SIZE), Some(ex));
        assert_eq!(atc.stats(), AtcStats { hits: 1, misses: 1 });
    }

    #[test]
    fn generation_bump_invalidates() {
        let asp = space();
        let va = asp.mmap(PAGE_SIZE, Prot::RW, true).unwrap();
        let ex = asp.extents(va, PAGE_SIZE).unwrap();
        let atc = ATCache::new(8);
        atc.insert(&asp, va, PAGE_SIZE, ex);
        // Any mapping change (here: a new mmap) bumps the generation.
        asp.mmap(PAGE_SIZE, Prot::RW, false).unwrap();
        assert!(atc.lookup(&asp, va, PAGE_SIZE).is_none());
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let asp = space();
        let atc = ATCache::new(2);
        let vas: Vec<_> = (0..3)
            .map(|_| asp.mmap(PAGE_SIZE, Prot::RW, true).unwrap())
            .collect();
        // Insert after all mmaps so generations stay valid.
        for &va in &vas {
            let ex = asp.extents(va, PAGE_SIZE).unwrap();
            atc.insert(&asp, va, PAGE_SIZE, ex);
        }
        assert!(atc.lookup(&asp, vas[0], PAGE_SIZE).is_none(), "evicted");
        assert!(atc.lookup(&asp, vas[1], PAGE_SIZE).is_some());
        assert!(atc.lookup(&asp, vas[2], PAGE_SIZE).is_some());
    }

    #[test]
    fn disabled_cache_never_hits() {
        let asp = space();
        let va = asp.mmap(PAGE_SIZE, Prot::RW, true).unwrap();
        let ex = asp.extents(va, PAGE_SIZE).unwrap();
        let atc = ATCache::new(8);
        atc.set_enabled(false);
        atc.insert(&asp, va, PAGE_SIZE, ex);
        assert!(atc.lookup(&asp, va, PAGE_SIZE).is_none());
    }
}
