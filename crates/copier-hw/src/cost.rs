//! Calibrated cost model for the simulated hardware.
//!
//! Constants are first-order fits to the paper's own quoted numbers for its
//! Xeon E5-2650 v4 testbed (DESIGN.md §8): e.g. "submitting a DMA task
//! costs as much as copying 1.4 KB with AVX2" (§4.3), "~240 cycles per page
//! for VA→PA translation" (§4.3, ≈83 ns at 2.9 GHz), and the break-even
//! sizes of §4.6. Every field is public and overridable per experiment.

use copier_sim::Nanos;

/// Which CPU copy routine is modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuCopyKind {
    /// Userspace glibc-style AVX2 memcpy — the fastest single-unit method.
    Avx2,
    /// Kernel `REP MOVSB` (ERMS) — no SIMD state to save, but a slower
    /// asymptote and a higher startup cost.
    Erms,
    /// A plain byte/word loop — the floor, used for sanity baselines.
    ByteLoop,
}

/// A linear cost curve `fixed + bytes / bytes_per_ns`.
#[derive(Debug, Clone, Copy)]
pub struct CopyCurve {
    /// Fixed startup cost.
    pub fixed: Nanos,
    /// Streaming bandwidth in bytes per nanosecond (= GB/s).
    pub bytes_per_ns: f64,
}

impl CopyCurve {
    /// The modeled time to move `bytes`.
    pub fn cost(&self, bytes: usize) -> Nanos {
        Nanos(self.fixed.as_nanos() + (bytes as f64 / self.bytes_per_ns).round() as u64)
    }

    /// Effective throughput in bytes/ns for a given transfer size.
    pub fn throughput(&self, bytes: usize) -> f64 {
        bytes as f64 / self.cost(bytes).as_nanos() as f64
    }
}

/// The full machine cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// AVX2 copy curve (userspace memcpy).
    pub avx2: CopyCurve,
    /// ERMS copy curve (kernel copy path).
    pub erms: CopyCurve,
    /// Byte-loop copy curve.
    pub byte_loop: CopyCurve,
    /// DMA transfer curve (device time; no CPU consumed during transfer).
    pub dma: CopyCurve,
    /// CPU time to submit one DMA descriptor (the paper: ≈ one 1.4 KB AVX copy).
    pub dma_submit: Nanos,
    /// CPU time to chain an additional descriptor onto an open batch
    /// (I/OAT descriptor rings amortize the doorbell over a chain).
    pub dma_chain: Nanos,
    /// CPU time to check/confirm one DMA completion.
    pub dma_complete_check: Nanos,
    /// Minimum subtask size considered a DMA candidate (§4.3).
    pub dma_candidate_min: usize,
    /// Task size at/above which i-piggyback applies (§4.3: 12 KB).
    pub ipiggyback_min: usize,
    /// Maximum bytes per hardware subtask: larger physically contiguous
    /// pieces are re-chunked so the AVX/DMA split can balance (and real
    /// DMA engines cap per-descriptor transfer sizes anyway).
    pub max_subtask: usize,
    /// Syscall trap + return.
    pub syscall: Nanos,
    /// One context switch (used by blocking syscalls and io_uring wakeups).
    pub context_switch: Nanos,
    /// Kernel page-fault entry/exit overhead (excluding the copy itself).
    pub page_fault: Nanos,
    /// One page-table walk (VA→PA, per page).
    pub pte_walk: Nanos,
    /// ATCache hit lookup.
    pub atc_hit: Nanos,
    /// TLB shootdown per remap/unmap operation (zero-copy/zIO tax).
    pub tlb_shootdown: Nanos,
    /// Bounded-retry limit for transient DMA errors before the dispatcher
    /// falls back to the CPU path.
    pub dma_retry_limit: u32,
    /// Base backoff before resubmitting a transient-failed descriptor;
    /// doubles per attempt (deterministic exponential backoff).
    pub dma_retry_backoff: Nanos,
    /// Completion-wait budget per descriptor, as a multiple of its modeled
    /// transfer time; past it the dispatcher cancels and falls back.
    pub dma_wait_budget: u64,
    /// How long a timeout-injected descriptor stalls the device, as a
    /// multiple of its modeled transfer time (fault injection only). Must
    /// comfortably exceed `dma_wait_budget` so cancellation wins the race.
    pub dma_timeout_stall: u64,
    /// Enqueue of one task into a CSH queue (client side).
    pub task_submit: Nanos,
    /// A csync that finds its segments already complete.
    pub csync_hit: Nanos,
    /// One poll sweep over a client's queues finding nothing.
    pub poll_idle: Nanos,
    /// Per-byte instrumentation tax of Userspace Bypass's binary translation
    /// on user buffer access (fraction of byte-loop cost added).
    pub ub_access_tax: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        let avx2 = CopyCurve {
            fixed: Nanos(20),
            bytes_per_ns: 11.0,
        };
        CostModel {
            avx2,
            erms: CopyCurve {
                fixed: Nanos(45),
                bytes_per_ns: 6.0,
            },
            byte_loop: CopyCurve {
                fixed: Nanos(5),
                bytes_per_ns: 2.5,
            },
            dma: CopyCurve {
                fixed: Nanos(60),
                bytes_per_ns: 4.2,
            },
            // Time to copy 1.4 KB with AVX2: 20 + 1434/11 ≈ 150 ns.
            dma_submit: avx2.cost(1434),
            dma_chain: Nanos(35),
            dma_complete_check: Nanos(30),
            dma_candidate_min: 4096,
            ipiggyback_min: 12 * 1024,
            max_subtask: 32 * 1024,
            syscall: Nanos(300),
            context_switch: Nanos(1200),
            page_fault: Nanos(1000),
            pte_walk: Nanos(83),
            atc_hit: Nanos(12),
            tlb_shootdown: Nanos(2000),
            dma_retry_limit: 3,
            dma_retry_backoff: Nanos(200),
            dma_wait_budget: 8,
            dma_timeout_stall: 64,
            task_submit: Nanos(40),
            csync_hit: Nanos(25),
            poll_idle: Nanos(80),
            ub_access_tax: 0.35,
        }
    }
}

impl CostModel {
    /// The curve for a CPU copy method.
    pub fn cpu_curve(&self, kind: CpuCopyKind) -> CopyCurve {
        match kind {
            CpuCopyKind::Avx2 => self.avx2,
            CpuCopyKind::Erms => self.erms,
            CpuCopyKind::ByteLoop => self.byte_loop,
        }
    }

    /// CPU cost of copying `bytes` with `kind`.
    pub fn cpu_copy(&self, kind: CpuCopyKind, bytes: usize) -> Nanos {
        self.cpu_curve(kind).cost(bytes)
    }

    /// Device time for a DMA transfer of `bytes`.
    pub fn dma_transfer(&self, bytes: usize) -> Nanos {
        self.dma.cost(bytes)
    }

    /// The DMA/AVX split ratio that equalizes completion times: assign this
    /// fraction of piggybacked bytes to DMA.
    pub fn dma_share(&self) -> f64 {
        self.dma.bytes_per_ns / (self.dma.bytes_per_ns + self.avx2.bytes_per_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotonic_in_size() {
        let m = CostModel::default();
        for kind in [CpuCopyKind::Avx2, CpuCopyKind::Erms, CpuCopyKind::ByteLoop] {
            let mut last = Nanos::ZERO;
            for sz in [64, 512, 4096, 65536] {
                let c = m.cpu_copy(kind, sz);
                assert!(c > last);
                last = c;
            }
        }
    }

    #[test]
    fn avx_beats_erms_beats_byteloop() {
        let m = CostModel::default();
        for sz in [256, 4096, 262144] {
            assert!(m.cpu_copy(CpuCopyKind::Avx2, sz) < m.cpu_copy(CpuCopyKind::Erms, sz));
            assert!(m.cpu_copy(CpuCopyKind::Erms, sz) < m.cpu_copy(CpuCopyKind::ByteLoop, sz));
        }
    }

    #[test]
    fn dma_submission_matches_quoted_equivalence() {
        let m = CostModel::default();
        // §4.3: submitting a DMA task costs about a 1.4 KB AVX2 copy.
        let avx_1_4k = m.cpu_copy(CpuCopyKind::Avx2, 1434);
        assert_eq!(m.dma_submit, avx_1_4k);
    }

    #[test]
    fn dma_slower_than_avx_for_small_but_useful_parallel() {
        let m = CostModel::default();
        // Fig. 7-a: DMA throughput below AVX2, markedly so for small sizes.
        assert!(m.dma_transfer(512) > m.cpu_copy(CpuCopyKind::Avx2, 512));
        let r_small = m.dma.throughput(512) / m.avx2.throughput(512);
        let r_large = m.dma.throughput(1 << 20) / m.avx2.throughput(1 << 20);
        assert!(r_small < r_large, "gap must shrink with size");
        assert!(m.dma_share() > 0.2 && m.dma_share() < 0.5);
    }
}
