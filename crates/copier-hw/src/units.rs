//! Copy units and subtask splitting.
//!
//! A *subtask* (§4.3) is the largest piece of a copy whose source and
//! destination are both physically contiguous — the unit a single DMA
//! descriptor (or one CPU copy call) can handle. [`split_subtasks`] derives
//! them from the two extent lists; [`copy_extent_pair`] performs the real
//! data movement for one subtask.

use std::rc::Rc;

use copier_mem::{Extent, FrameId, PhysMem, PAGE_SIZE};
use copier_sim::Nanos;

use crate::cost::{CostModel, CpuCopyKind};

/// One hardware-executable piece of a copy task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubTask {
    /// Byte offset of this piece within the owning copy task.
    pub task_off: usize,
    /// Physically contiguous source.
    pub src: Extent,
    /// Physically contiguous destination (same length as `src`).
    pub dst: Extent,
}

impl SubTask {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.src.len
    }

    /// True if the subtask is empty (never produced by the splitter).
    pub fn is_empty(&self) -> bool {
        self.src.len == 0
    }
}

/// Splits a copy into subtasks at every source or destination
/// discontinuity.
///
/// Both extent lists must cover the same total length.
pub fn split_subtasks(dst: &[Extent], src: &[Extent]) -> Vec<SubTask> {
    let total: usize = src.iter().map(|e| e.len).sum();
    debug_assert_eq!(total, dst.iter().map(|e| e.len).sum::<usize>());
    let mut out = Vec::new();
    let (mut si, mut di) = (0usize, 0usize);
    let (mut s_used, mut d_used) = (0usize, 0usize);
    let mut task_off = 0usize;
    while task_off < total {
        let s = &src[si];
        let d = &dst[di];
        let take = (s.len - s_used).min(d.len - d_used);
        out.push(SubTask {
            task_off,
            src: sub_extent(s, s_used, take),
            dst: sub_extent(d, d_used, take),
        });
        task_off += take;
        s_used += take;
        d_used += take;
        if s_used == s.len {
            si += 1;
            s_used = 0;
        }
        if d_used == d.len {
            di += 1;
            d_used = 0;
        }
    }
    out
}

/// A sub-range of an extent, normalized so `off < PAGE_SIZE`.
fn sub_extent(e: &Extent, skip: usize, len: usize) -> Extent {
    let abs = e.off + skip;
    Extent {
        frame: FrameId(e.frame.0 + (abs / PAGE_SIZE) as u32),
        off: abs % PAGE_SIZE,
        len,
    }
}

/// Slices `[off, off+len)` out of an extent list (byte-granular).
///
/// Used to carve a task's partial ranges (absorption layers, deferred
/// gaps) out of its full translation.
pub fn slice_extents(extents: &[Extent], off: usize, len: usize) -> Vec<Extent> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let end = off + len;
    for e in extents {
        let e_start = pos;
        let e_end = pos + e.len;
        let lo = off.max(e_start);
        let hi = end.min(e_end);
        if lo < hi {
            out.push(sub_extent(e, lo - e_start, hi - lo));
        }
        pos = e_end;
        if pos >= end {
            break;
        }
    }
    debug_assert_eq!(out.iter().map(|e| e.len).sum::<usize>(), len);
    out
}

/// Physically copies one contiguous extent pair. This is the real data
/// movement of the simulation: both sides are physically contiguous runs,
/// so the whole pair is one `memcpy` (or `memmove` when they overlap)
/// through the frame arena — no per-page tiling on the host.
pub fn copy_extent_pair(pm: &PhysMem, dst: Extent, src: Extent) {
    debug_assert_eq!(dst.len, src.len);
    pm.copy_run(dst.frame, dst.off, src.frame, src.off, src.len);
}

/// A CPU copy unit: executes subtasks synchronously on the caller's core,
/// charging its modeled cost.
pub struct CpuUnit {
    kind: CpuCopyKind,
    cost: Rc<CostModel>,
}

impl CpuUnit {
    /// Creates a unit of the given routine.
    pub fn new(kind: CpuCopyKind, cost: Rc<CostModel>) -> Self {
        CpuUnit { kind, cost }
    }

    /// The modeled routine.
    pub fn kind(&self) -> CpuCopyKind {
        self.kind
    }

    /// Performs the real copy and returns the virtual time to charge.
    pub fn copy(&self, pm: &PhysMem, st: &SubTask) -> Nanos {
        copy_extent_pair(pm, st.dst, st.src);
        self.cost.cpu_copy(self.kind, st.len())
    }

    /// The modeled cost of copying `bytes` without doing it (planning).
    pub fn cost_of(&self, bytes: usize) -> Nanos {
        self.cost.cpu_copy(self.kind, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::AllocPolicy;

    fn pm() -> Rc<PhysMem> {
        Rc::new(PhysMem::new(64, AllocPolicy::Sequential))
    }

    fn alloc_extent(pm: &PhysMem, pages: usize) -> Extent {
        let f = pm.alloc_contiguous(pages).unwrap();
        Extent {
            frame: f,
            off: 0,
            len: pages * PAGE_SIZE,
        }
    }

    #[test]
    fn split_aligned_single_extents() {
        let a = Extent {
            frame: FrameId(0),
            off: 0,
            len: 8192,
        };
        let b = Extent {
            frame: FrameId(4),
            off: 0,
            len: 8192,
        };
        let st = split_subtasks(&[b], &[a]);
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].len(), 8192);
        assert_eq!(st[0].task_off, 0);
    }

    #[test]
    fn split_at_both_boundaries() {
        // src: [3000, 5192]; dst: [4096, 4096] → cuts at 3000 and 4096.
        let src = [
            Extent {
                frame: FrameId(0),
                off: 0,
                len: 3000,
            },
            Extent {
                frame: FrameId(10),
                off: 0,
                len: 5192,
            },
        ];
        let dst = [
            Extent {
                frame: FrameId(20),
                off: 0,
                len: 4096,
            },
            Extent {
                frame: FrameId(30),
                off: 0,
                len: 4096,
            },
        ];
        let st = split_subtasks(&dst, &src);
        let lens: Vec<usize> = st.iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![3000, 1096, 4096]);
        let offs: Vec<usize> = st.iter().map(|s| s.task_off).collect();
        assert_eq!(offs, vec![0, 3000, 4096]);
        // Second subtask's src starts 1096 bytes into frame 10's run? No:
        // it starts at frame 10 offset 0 + 0... verify normalization.
        assert_eq!(st[1].src.frame, FrameId(10));
        assert_eq!(st[1].src.off, 0);
        assert_eq!(st[2].src.frame, FrameId(10));
        assert_eq!(st[2].src.off, 1096);
    }

    #[test]
    fn sub_extent_normalizes_page_crossing() {
        let e = Extent {
            frame: FrameId(2),
            off: 3000,
            len: 10000,
        };
        let s = sub_extent(&e, 2000, 1000);
        // 3000 + 2000 = 5000 → frame 3, off 904.
        assert_eq!(s.frame, FrameId(3));
        assert_eq!(s.off, 5000 - PAGE_SIZE);
        assert_eq!(s.len, 1000);
    }

    #[test]
    fn copy_extent_pair_moves_bytes_across_pages() {
        let pm = pm();
        let a = alloc_extent(&pm, 3);
        let b = alloc_extent(&pm, 3);
        // Fill source with a pattern through the frames.
        let data: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        for p in 0..3 {
            pm.write(
                FrameId(a.frame.0 + p as u32),
                0,
                &data[p * PAGE_SIZE..(p + 1) * PAGE_SIZE],
            );
        }
        let src = Extent {
            frame: a.frame,
            off: 100,
            len: 2 * PAGE_SIZE,
        };
        let dst = Extent {
            frame: b.frame,
            off: 50,
            len: 2 * PAGE_SIZE,
        };
        copy_extent_pair(&pm, dst, src);
        let mut got = vec![0u8; 2 * PAGE_SIZE];
        for p in 0..3 {
            let mut page = vec![0u8; PAGE_SIZE];
            pm.read(FrameId(b.frame.0 + p as u32), 0, &mut page);
            let lo = p * PAGE_SIZE;
            for (i, &v) in page.iter().enumerate() {
                let abs = lo + i;
                if abs >= 50 && abs < 50 + 2 * PAGE_SIZE {
                    got[abs - 50] = v;
                }
            }
        }
        assert_eq!(&got[..], &data[100..100 + 2 * PAGE_SIZE]);
    }

    #[test]
    fn cpu_unit_copies_and_charges() {
        let pm = pm();
        let a = alloc_extent(&pm, 1);
        let b = alloc_extent(&pm, 1);
        pm.write(a.frame, 0, b"unit test payload");
        let unit = CpuUnit::new(CpuCopyKind::Avx2, Rc::new(CostModel::default()));
        let st = SubTask {
            task_off: 0,
            src: Extent {
                frame: a.frame,
                off: 0,
                len: 17,
            },
            dst: Extent {
                frame: b.frame,
                off: 9,
                len: 17,
            },
        };
        let cost = unit.copy(&pm, &st);
        assert!(cost > Nanos::ZERO);
        let mut buf = [0u8; 17];
        pm.read(b.frame, 9, &mut buf);
        assert_eq!(&buf, b"unit test payload");
    }
}
#[cfg(test)]
mod slice_tests {
    use super::*;
    use copier_mem::FrameId;

    #[test]
    fn slice_extents_carves_ranges() {
        let ex = [
            Extent {
                frame: FrameId(0),
                off: 100,
                len: 3000,
            },
            Extent {
                frame: FrameId(9),
                off: 0,
                len: 5000,
            },
        ];
        let s = slice_extents(&ex, 2000, 2000);
        assert_eq!(s.len(), 2);
        assert_eq!(
            s[0],
            Extent {
                frame: FrameId(0),
                off: 2100,
                len: 1000
            }
        );
        assert_eq!(
            s[1],
            Extent {
                frame: FrameId(9),
                off: 0,
                len: 1000
            }
        );
        let whole = slice_extents(&ex, 0, 8000);
        assert_eq!(whole.to_vec(), ex.to_vec());
        // Slice crossing a page boundary inside an extent normalizes.
        let s2 = slice_extents(&ex, 3000 + 4096 - 0, 10);
        assert_eq!(s2[0].frame, FrameId(10));
    }
}
