//! Piggyback-based hardware dispatcher (§4.3).
//!
//! The dispatcher works in rounds over a batch of dependency-free copies:
//!
//! 1. **Packed scheduling** — subtasks large enough to amortize a DMA
//!    descriptor are *DMA candidates*. For one large task (≥ 12 KB) the
//!    candidates are drawn from the task's own tail (*i-piggyback*); for a
//!    run of smaller tasks, from the later tasks of the batch
//!    (*e-piggyback*) — later bytes have longer Copy-Use windows. The DMA
//!    byte share targets equal AVX/DMA completion times.
//! 2. **Parallel execution** — DMA descriptors are submitted first (their
//!    submission cost burns copier-core CPU), AVX subtasks execute while the
//!    device streams, and completions are confirmed last.
//!
//! Progress callbacks fire per subtask the moment its bytes land (from the
//! device task for DMA subtasks), driving fine-grained descriptor updates.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use copier_mem::{Extent, PhysMem};
use copier_sim::{Core, Nanos};

use crate::cost::{CostModel, CpuCopyKind};
use crate::dma::{DmaEngine, DmaError};
use crate::units::{copy_extent_pair, CpuUnit, SubTask};

/// How much of each DMA transfer the dispatcher digest-verifies.
///
/// Verification brackets a transfer with FNV digests: the *source* is
/// digested at submission, the *destination* at completion; a mismatch
/// means the device landed wrong bytes while reporting success (silent
/// corruption). CPU subtasks are exact by construction and are never
/// verified. Digesting is host-side work — it charges no virtual time,
/// so `Off` and `Full` runs are byte-identical in virtual time when no
/// corruption fires (the ≤5% bar in `fig_integrity` is host overhead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VerifyPolicy {
    /// Trust completion status (the pre-integrity behavior).
    #[default]
    Off,
    /// Digest the first and last 64 bytes of each transfer: `O(1)` per
    /// descriptor, catches misdirected writes and edge damage but is
    /// blind to interior bit flips.
    Sampled,
    /// Digest every byte of each transfer: detects any corruption.
    Full,
}

/// A copy ready for hardware: already split into subtasks.
#[derive(Debug, Clone)]
pub struct PlannedCopy {
    /// Caller-chosen identifier threaded through progress callbacks.
    pub task_id: u64,
    /// Total length in bytes.
    pub len: usize,
    /// Subtasks in task order (offsets strictly increasing).
    pub subtasks: Vec<SubTask>,
    /// Force full verification for this task regardless of the
    /// dispatcher-wide [`VerifyPolicy`] (`amemcpy_verified`).
    pub verify: bool,
}

/// What the dispatcher did for one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchReport {
    /// Bytes copied by the CPU unit.
    pub cpu_bytes: usize,
    /// Bytes copied by DMA.
    pub dma_bytes: usize,
    /// DMA descriptors submitted.
    pub dma_descriptors: usize,
    /// Copier-core time spent waiting on straggling DMA completions.
    pub dma_wait: Nanos,
    /// Transient-failed descriptors resubmitted (bounded backoff).
    pub retries: u64,
    /// Bytes rescued by the CPU after DMA gave up (counted in `cpu_bytes`
    /// too; subtracted from `dma_bytes`).
    pub fallback_bytes: usize,
    /// Digest mismatches caught by verification (silent corruptions
    /// detected).
    pub corruptions: u64,
    /// Detected corruptions healed by a bounded re-copy from a
    /// still-valid source. `corruptions - repairs` tasks surface through
    /// [`Dispatcher::take_corrupted`].
    pub repairs: u64,
}

/// Progress notification: `(task_id, offset_within_task, len)`.
pub type ProgressFn = Rc<dyn Fn(u64, usize, usize)>;

/// Per-batch working vectors, kept across rounds so steady-state dispatch
/// does no per-round heap allocation (host-only; plans are unchanged).
#[derive(Default)]
struct Scratch {
    /// Re-chunked batch (`normalize` output).
    normalized: Vec<PlannedCopy>,
    /// Per-(task, subtask) DMA assignment (`plan` output).
    assign: Vec<Vec<bool>>,
    /// Recycled inner vectors for `normalized`.
    subtask_pool: Vec<Vec<SubTask>>,
    /// Recycled inner vectors for `assign`.
    bool_pool: Vec<Vec<bool>>,
}

/// The hardware dispatcher.
pub struct Dispatcher {
    pm: Rc<PhysMem>,
    cost: Rc<CostModel>,
    cpu: CpuUnit,
    dma: Option<Rc<DmaEngine>>,
    scratch: RefCell<Scratch>,
    verify: Cell<VerifyPolicy>,
    /// Re-copy attempts per detected corruption before giving the task
    /// up as [`Dispatcher::take_corrupted`].
    repair_limit: Cell<u32>,
    /// Task ids whose corruption survived the repair budget this batch,
    /// drained by the service after `execute_batch`.
    corrupted: RefCell<Vec<u64>>,
}

/// FNV digest of a physical extent — full-extent when `full`, else the
/// first and last 64 bytes. Only comparable against digests from this
/// same function at the same coverage.
fn extent_phys_digest(pm: &PhysMem, ext: Extent, full: bool) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (ext.len as u64);
    h = h.wrapping_mul(PRIME);
    let mut fold = |chunk: &[u8]| {
        let mut words = chunk.chunks_exact(8);
        for w in words.by_ref() {
            h = (h ^ u64::from_le_bytes(w.try_into().unwrap())).wrapping_mul(PRIME);
        }
        for &b in words.remainder() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    let mut buf = [0u8; 4096];
    if full {
        let mut done = 0usize;
        while done < ext.len {
            let take = (ext.len - done).min(buf.len());
            pm.read_run(ext.frame, ext.off + done, &mut buf[..take]);
            fold(&buf[..take]);
            done += take;
        }
    } else {
        let head = ext.len.min(64);
        pm.read_run(ext.frame, ext.off, &mut buf[..head]);
        fold(&buf[..head]);
        if ext.len > 64 {
            let tail = (ext.len - 64).max(head);
            let n = ext.len - tail;
            pm.read_run(ext.frame, ext.off + tail, &mut buf[..n]);
            fold(&buf[..n]);
        }
    }
    h
}

impl Dispatcher {
    /// Creates a dispatcher; `dma = None` degrades to pure CPU copy (the
    /// hardware ablation of Fig. 12-c).
    pub fn new(pm: Rc<PhysMem>, cost: Rc<CostModel>, dma: Option<Rc<DmaEngine>>) -> Self {
        let cpu = CpuUnit::new(CpuCopyKind::Avx2, Rc::clone(&cost));
        Dispatcher {
            pm,
            cost,
            cpu,
            dma,
            scratch: RefCell::new(Scratch::default()),
            verify: Cell::new(VerifyPolicy::Off),
            repair_limit: Cell::new(2),
            corrupted: RefCell::new(Vec::new()),
        }
    }

    /// Sets the dispatcher-wide verification policy and the per-detection
    /// repair budget.
    pub fn set_verify(&self, policy: VerifyPolicy, repair_limit: u32) {
        self.verify.set(policy);
        self.repair_limit.set(repair_limit);
    }

    /// The dispatcher-wide verification policy.
    pub fn verify_policy(&self) -> VerifyPolicy {
        self.verify.get()
    }

    /// Drains the task ids whose detected corruption could not be
    /// repaired in the last `execute_batch` (the service poisons them as
    /// `CopyFault::Corrupted`).
    pub fn take_corrupted(&self) -> Vec<u64> {
        std::mem::take(&mut *self.corrupted.borrow_mut())
    }

    /// Whether a DMA engine is attached.
    pub fn has_dma(&self) -> bool {
        self.dma.is_some()
    }

    /// The attached DMA engine, if any (for quarantine observability).
    pub fn dma(&self) -> Option<&Rc<DmaEngine>> {
        self.dma.as_ref()
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &Rc<CostModel> {
        &self.cost
    }

    /// Re-chunks any subtask larger than [`CostModel::max_subtask`] so the
    /// piggyback split has balancing granularity.
    pub fn normalize(&self, batch: &[PlannedCopy]) -> Vec<PlannedCopy> {
        let mut out = Vec::new();
        self.normalize_into(batch, &mut out, &mut Vec::new());
        out
    }

    /// [`Self::normalize`] into caller-owned storage, drawing inner vectors
    /// from `pool` instead of the allocator.
    fn normalize_into(
        &self,
        batch: &[PlannedCopy],
        out: &mut Vec<PlannedCopy>,
        pool: &mut Vec<Vec<SubTask>>,
    ) {
        let max = self.cost.max_subtask.max(4096);
        out.clear();
        for t in batch {
            let mut subtasks = pool.pop().unwrap_or_default();
            debug_assert!(subtasks.is_empty());
            for st in &t.subtasks {
                if st.len() <= max {
                    subtasks.push(*st);
                    continue;
                }
                let mut off = 0usize;
                while off < st.len() {
                    let take = (st.len() - off).min(max);
                    subtasks.push(SubTask {
                        task_off: st.task_off + off,
                        src: crate::units::slice_extents(&[st.src], off, take)[0],
                        dst: crate::units::slice_extents(&[st.dst], off, take)[0],
                    });
                    off += take;
                }
            }
            out.push(PlannedCopy {
                task_id: t.task_id,
                len: t.len,
                subtasks,
                verify: t.verify,
            });
        }
    }

    /// Plans a batch: returns per-(batch-index, subtask) assignments,
    /// `true` meaning DMA. Exposed for tests and ablation studies.
    pub fn plan(&self, batch: &[PlannedCopy]) -> Vec<Vec<bool>> {
        let mut assign = Vec::new();
        self.plan_into(batch, &mut assign, &mut Vec::new());
        assign
    }

    /// [`Self::plan`] into caller-owned storage, drawing inner vectors from
    /// `pool` instead of the allocator.
    fn plan_into(
        &self,
        batch: &[PlannedCopy],
        assign: &mut Vec<Vec<bool>>,
        pool: &mut Vec<Vec<bool>>,
    ) {
        assign.clear();
        for t in batch {
            let mut row = pool.pop().unwrap_or_default();
            debug_assert!(row.is_empty());
            row.resize(t.subtasks.len(), false);
            assign.push(row);
        }
        // A fully quarantined engine is as good as absent: plan pure CPU.
        let live = self.dma.as_ref().map_or(0, |d| d.live_channels());
        if live == 0 {
            return;
        }
        // Balance against the bytes actually in this round's subtasks (a
        // copy-slice round may carry only part of a large task).
        let total: usize = batch
            .iter()
            .map(|t| t.subtasks.iter().map(|s| s.len()).sum::<usize>())
            .sum();
        let single_large = batch.len() == 1 && total >= self.cost.ipiggyback_min;
        let fused_small = batch.len() > 1;
        if !(single_large || fused_small) {
            // A lone small task: submission overhead not worth it.
            return;
        }
        // Target DMA bytes so AVX and DMA finish together.
        let target = (total as f64 * self.cost.dma_share()) as usize;
        let mut picked = 0usize;
        // Walk from the batch tail: later bytes have longer Copy-Use windows.
        'outer: for (ti, task) in batch.iter().enumerate().rev() {
            for (si, st) in task.subtasks.iter().enumerate().rev() {
                if st.len() >= self.cost.dma_candidate_min {
                    // Don't overshoot the balance point: a too-large pick
                    // leaves the CPU idle-waiting on the device.
                    if picked > 0 && picked + st.len() > target + target / 4 {
                        continue;
                    }
                    assign[ti][si] = true;
                    picked += st.len();
                    if picked >= target {
                        break 'outer;
                    }
                }
            }
        }
    }

    /// Executes a batch of independent copies on the given copier core,
    /// invoking `progress` as bytes land. Returns a report.
    pub async fn execute_batch(
        &self,
        core: &Rc<Core>,
        batch: &[PlannedCopy],
        progress: ProgressFn,
    ) -> DispatchReport {
        // Take the scratch by value: nothing borrows the cell across an
        // await, and a re-entrant call simply starts from an empty default.
        let mut scr = self.scratch.take();
        self.normalize_into(batch, &mut scr.normalized, &mut scr.subtask_pool);
        self.plan_into(&scr.normalized, &mut scr.assign, &mut scr.bool_pool);
        let batch = &scr.normalized;
        let assign = &scr.assign;
        let mut report = DispatchReport::default();
        let mut completions = Vec::new();

        // Phase 1: submit all DMA descriptors (batched, paying CPU per
        // descriptor), so the device streams while AVX runs. Under a
        // verification policy the source of each transfer is digested
        // *before* submission (host-side; no virtual time charged) —
        // the reference the destination is checked against in phase 3.
        if let Some(dma) = &self.dma {
            let mut first = true;
            for (ti, task) in batch.iter().enumerate() {
                let policy = if task.verify {
                    VerifyPolicy::Full
                } else {
                    self.verify.get()
                };
                for (si, st) in task.subtasks.iter().enumerate() {
                    if assign[ti][si] {
                        // First descriptor pays the doorbell; the rest
                        // chain onto the open batch.
                        core.advance(if first {
                            self.cost.dma_submit
                        } else {
                            self.cost.dma_chain
                        })
                        .await;
                        first = false;
                        let expect = match policy {
                            VerifyPolicy::Off => None,
                            VerifyPolicy::Sampled => {
                                Some((extent_phys_digest(&self.pm, st.src, false), false))
                            }
                            VerifyPolicy::Full => {
                                Some((extent_phys_digest(&self.pm, st.src, true), true))
                            }
                        };
                        let p = Rc::clone(&progress);
                        let task_id = task.task_id;
                        let c = dma.submit(
                            *st,
                            Some(Box::new(move |s: &SubTask| {
                                p(task_id, s.task_off, s.len());
                            })),
                        );
                        completions.push((c, task_id, expect));
                        report.dma_descriptors += 1;
                        report.dma_bytes += st.len();
                    }
                }
            }
        }

        // Phase 2: AVX subtasks execute meanwhile.
        for (ti, task) in batch.iter().enumerate() {
            for (si, st) in task.subtasks.iter().enumerate() {
                if !assign[ti][si] {
                    let cost = self.cpu.cost_of(st.len());
                    core.advance(cost).await;
                    // The data lands when the copy instruction stream ends.
                    crate::units::copy_extent_pair(&self.pm, st.dst, st.src);
                    core.cache.note_inline_copy(st.len());
                    progress(task.task_id, st.task_off, st.len());
                    report.cpu_bytes += st.len();
                }
            }
        }

        // Phase 3: confirm DMA completions, recovering failures so the
        // batch still lands every byte. Transient errors are resubmitted
        // under a bounded deterministic exponential backoff; a descriptor
        // that outlives its wait budget is cancelled; anything that cannot
        // be retried (dead channel, timeout, retry budget spent) falls back
        // to the CPU unit. Segment accounting stays exact because progress
        // fires exactly once per subtask: from the device on success, from
        // the fallback copy otherwise (failed/cancelled descriptors never
        // fire `on_done`).
        if let Some(dma) = &self.dma {
            for (mut c, task_id, expect) in completions {
                let mut attempts = 0u32;
                loop {
                    core.advance(self.cost.dma_complete_check).await;
                    let budget = Nanos(
                        self.cost
                            .dma_transfer(c.subtask.len())
                            .as_nanos()
                            .saturating_mul(self.cost.dma_wait_budget.max(1)),
                    );
                    let t0 = core_now(core);
                    while !c.is_settled() {
                        core.advance(self.cost.dma_complete_check.max(Nanos(100)))
                            .await;
                        if core_now(core) - t0 > budget {
                            // The device is stalling far past the modeled
                            // time; withdraw the descriptor. The device
                            // re-checks the flag before landing bytes, so a
                            // cancelled descriptor can never complete behind
                            // our back and double-fire progress. If it
                            // settled between the check and the cancel, the
                            // cancel is a no-op and the result stands.
                            c.cancel();
                            break;
                        }
                    }
                    report.dma_wait += core_now(core) - t0;
                    if c.is_done() {
                        // The device believes this transfer succeeded; the
                        // digest is the only thing that can contradict it.
                        if let Some((want, full)) = expect {
                            if extent_phys_digest(&self.pm, c.subtask.dst, full) != want {
                                report.corruptions += 1;
                                dma.note_corruption(c.channel);
                                if self.repair(core, dma, &c.subtask, want, full).await {
                                    report.repairs += 1;
                                } else {
                                    self.corrupted.borrow_mut().push(task_id);
                                }
                            }
                        }
                        break;
                    }
                    let err = c.error().unwrap_or(DmaError::Timeout);
                    if err == DmaError::Transient
                        && attempts < self.cost.dma_retry_limit
                        && dma.live_channels() > 0
                    {
                        attempts += 1;
                        report.retries += 1;
                        let backoff =
                            Nanos(self.cost.dma_retry_backoff.as_nanos() << (attempts - 1).min(16));
                        core.advance(backoff).await;
                        core.advance(self.cost.dma_submit).await;
                        let p = Rc::clone(&progress);
                        let tid = task_id;
                        let st = c.subtask;
                        c = dma.submit(
                            st,
                            Some(Box::new(move |s: &SubTask| {
                                p(tid, s.task_off, s.len());
                            })),
                        );
                        continue;
                    }
                    // CPU fallback: rescue the descriptor's bytes inline.
                    let st = c.subtask;
                    core.advance(self.cpu.cost_of(st.len())).await;
                    crate::units::copy_extent_pair(&self.pm, st.dst, st.src);
                    core.cache.note_inline_copy(st.len());
                    progress(task_id, st.task_off, st.len());
                    report.fallback_bytes += st.len();
                    report.cpu_bytes += st.len();
                    report.dma_bytes -= st.len();
                    break;
                }
            }
        }
        // Recycle the round's vectors for the next batch.
        for mut t in scr.normalized.drain(..) {
            t.subtasks.clear();
            scr.subtask_pool.push(t.subtasks);
        }
        for mut row in scr.assign.drain(..) {
            row.clear();
            scr.bool_pool.push(row);
        }
        *self.scratch.borrow_mut() = scr;
        report
    }

    /// Bounded re-copy of a subtask whose destination failed digest
    /// verification. Each attempt first confirms the *source* still
    /// digests to the pre-dispatch value (repairing from a since-mutated
    /// source would heal to garbage), then re-copies — on a healthy DMA
    /// channel when one survives, inline on the CPU otherwise — and
    /// re-verifies. Progress already fired for the original
    /// believed-successful transfer, so the re-copy carries no progress
    /// callback and segment accounting stays exact.
    async fn repair(
        &self,
        core: &Rc<Core>,
        dma: &Rc<DmaEngine>,
        st: &SubTask,
        want: u64,
        full: bool,
    ) -> bool {
        for _ in 0..self.repair_limit.get() {
            if extent_phys_digest(&self.pm, st.src, full) != want {
                return false;
            }
            if dma.live_channels() > 0 {
                core.advance(self.cost.dma_submit).await;
                let c = dma.submit(*st, None);
                c.wait().await;
                if c.is_done() {
                    // A corrupted *repair* is a verified strike too — a
                    // channel that damages retries gets retired faster.
                    if extent_phys_digest(&self.pm, st.dst, full) != want {
                        dma.note_corruption(c.channel);
                    }
                } else {
                    // The re-copy failed outright: rescue on the CPU.
                    core.advance(self.cpu.cost_of(st.len())).await;
                    copy_extent_pair(&self.pm, st.dst, st.src);
                    core.cache.note_inline_copy(st.len());
                }
            } else {
                core.advance(self.cpu.cost_of(st.len())).await;
                copy_extent_pair(&self.pm, st.dst, st.src);
                core.cache.note_inline_copy(st.len());
            }
            if extent_phys_digest(&self.pm, st.dst, full) == want {
                return true;
            }
        }
        false
    }
}

// Small helper: a core doesn't expose its sim handle, so thread time via
// busy accounting — we instead measure wait with the core's own busy time,
// which equals elapsed virtual time while polling (the poll loop is the
// only demand during confirmation in copier's dedicated-core setup).
fn core_now(core: &Rc<Core>) -> Nanos {
    core.busy_time()
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::{AllocPolicy, Extent, FrameId, PAGE_SIZE};
    use copier_sim::{Machine, Sim};
    use std::cell::RefCell;

    fn planned(pm: &PhysMem, task_id: u64, pages: usize) -> PlannedCopy {
        let src = pm.alloc_contiguous(pages).unwrap();
        let dst = pm.alloc_contiguous(pages).unwrap();
        let len = pages * PAGE_SIZE;
        // Fill the source with a recognizable pattern.
        for p in 0..pages {
            let bytes: Vec<u8> = (0..PAGE_SIZE)
                .map(|i| ((i + p * 7 + task_id as usize) % 251) as u8)
                .collect();
            pm.write(FrameId(src.0 + p as u32), 0, &bytes);
        }
        let st = SubTask {
            task_off: 0,
            src: Extent {
                frame: src,
                off: 0,
                len,
            },
            dst: Extent {
                frame: dst,
                off: 0,
                len,
            },
        };
        PlannedCopy {
            task_id,
            len,
            subtasks: vec![st],
            verify: false,
        }
    }

    fn split_pages(p: PlannedCopy) -> PlannedCopy {
        // Re-split a single-extent task into page-sized subtasks.
        let st = p.subtasks[0];
        let pages = st.len() / PAGE_SIZE;
        let subtasks = (0..pages)
            .map(|i| SubTask {
                task_off: i * PAGE_SIZE,
                src: Extent {
                    frame: FrameId(st.src.frame.0 + i as u32),
                    off: 0,
                    len: PAGE_SIZE,
                },
                dst: Extent {
                    frame: FrameId(st.dst.frame.0 + i as u32),
                    off: 0,
                    len: PAGE_SIZE,
                },
            })
            .collect();
        PlannedCopy { subtasks, ..p }
    }

    #[test]
    fn lone_small_task_stays_on_cpu() {
        let pm = Rc::new(PhysMem::new(64, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let sim = Sim::new();
        let h = sim.handle();
        let dma = DmaEngine::new(&h, Rc::clone(&pm), Rc::clone(&cost));
        let d = Dispatcher::new(Rc::clone(&pm), cost, Some(dma));
        let task = planned(&pm, 1, 1); // 4 KB < 12 KB i-piggyback floor
        let plan = d.plan(&[task]);
        assert!(plan[0].iter().all(|&x| !x));
    }

    #[test]
    fn i_piggyback_sends_tail_to_dma() {
        let pm = Rc::new(PhysMem::new(128, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let sim = Sim::new();
        let h = sim.handle();
        let dma = DmaEngine::new(&h, Rc::clone(&pm), Rc::clone(&cost));
        let d = Dispatcher::new(Rc::clone(&pm), Rc::clone(&cost), Some(dma));
        let task = split_pages(planned(&pm, 1, 8)); // 32 KB in 8 page subtasks
        let plan = d.plan(&[task.clone()]);
        let dma_idx: Vec<usize> = plan[0]
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert!(!dma_idx.is_empty());
        // Picked from the tail.
        assert_eq!(*dma_idx.iter().max().unwrap(), 7);
        let dma_bytes: usize = dma_idx.len() * PAGE_SIZE;
        let target = (task.len as f64 * cost.dma_share()) as usize;
        // The overshoot guard keeps the pick near (within ±25% + one page
        // of) the balance target.
        assert!(
            dma_bytes as f64 >= target as f64 * 0.6 && dma_bytes <= target + target / 4 + PAGE_SIZE,
            "dma {dma_bytes} vs target {target}"
        );
    }

    #[test]
    fn e_piggyback_fuses_small_tasks() {
        let pm = Rc::new(PhysMem::new(128, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let sim = Sim::new();
        let h = sim.handle();
        let dma = DmaEngine::new(&h, Rc::clone(&pm), Rc::clone(&cost));
        let d = Dispatcher::new(Rc::clone(&pm), cost, Some(dma));
        let batch: Vec<PlannedCopy> = (0..4).map(|i| planned(&pm, i, 1)).collect();
        let plan = d.plan(&batch);
        let picked: usize = plan.iter().flatten().filter(|&&b| b).count();
        assert!(picked >= 1, "fused batch should engage DMA");
        // Later tasks are preferred.
        assert!(plan[3][0], "the last task's subtask goes to DMA first");
    }

    #[test]
    fn execute_batch_moves_all_bytes_and_reports() {
        let pm = Rc::new(PhysMem::new(256, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 1);
        let dma = DmaEngine::new(&h, Rc::clone(&pm), Rc::clone(&cost));
        let d = Rc::new(Dispatcher::new(Rc::clone(&pm), cost, Some(dma)));

        let task = split_pages(planned(&pm, 7, 16)); // 64 KB
        let expect_src = task.subtasks[0].src.frame;
        let expect_dst = task.subtasks[0].dst.frame;
        let progress: Rc<RefCell<Vec<(u64, usize, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let p2 = Rc::clone(&progress);
        let core = m.core(0);
        let d2 = Rc::clone(&d);
        let task2 = task.clone();
        let report = Rc::new(RefCell::new(DispatchReport::default()));
        let report2 = Rc::clone(&report);
        sim.spawn("copier", async move {
            let cb: ProgressFn = Rc::new(move |id, off, len| {
                p2.borrow_mut().push((id, off, len));
            });
            let r = d2.execute_batch(&core, &[task2], cb).await;
            *report2.borrow_mut() = r;
        });
        sim.run();

        let r = *report.borrow();
        assert_eq!(r.cpu_bytes + r.dma_bytes, 16 * PAGE_SIZE);
        assert!(r.dma_bytes > 0 && r.cpu_bytes > 0, "{r:?}");
        // Every byte reported exactly once.
        let mut covered = vec![false; 16 * PAGE_SIZE];
        for (id, off, len) in progress.borrow().iter() {
            assert_eq!(*id, 7);
            for b in *off..*off + *len {
                assert!(!covered[b], "byte {b} reported twice");
                covered[b] = true;
            }
        }
        assert!(covered.iter().all(|&b| b));
        // Data integrity: destination equals source.
        for p in 0..16u32 {
            let mut s = vec![0u8; PAGE_SIZE];
            let mut dd = vec![0u8; PAGE_SIZE];
            pm.read(FrameId(expect_src.0 + p), 0, &mut s);
            pm.read(FrameId(expect_dst.0 + p), 0, &mut dd);
            assert_eq!(s, dd, "page {p}");
        }
    }

    fn run_with_flips(policy: VerifyPolicy) -> (DispatchReport, Vec<u64>, bool, u64) {
        // Every DMA transfer is bit-flipped in flight; returns the
        // report, the unrepaired task ids, whether dst == src at the
        // end, and the corrupt-quarantined channel count.
        let pm = Rc::new(PhysMem::new(256, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 1);
        let plan = copier_sim::FaultPlan::new(copier_sim::FaultConfig {
            seed: 17,
            dma_flip_prob: 1.0,
            ..Default::default()
        });
        let dma = DmaEngine::with_channels(&h, Rc::clone(&pm), Rc::clone(&cost), 1, Some(plan));
        let eng = Rc::clone(&dma);
        let d = Rc::new(Dispatcher::new(Rc::clone(&pm), cost, Some(dma)));
        d.set_verify(policy, 2);
        let task = split_pages(planned(&pm, 3, 16));
        let (src0, dst0) = (task.subtasks[0].src.frame, task.subtasks[0].dst.frame);
        let core = m.core(0);
        let d2 = Rc::clone(&d);
        let task2 = task.clone();
        let report = Rc::new(RefCell::new(DispatchReport::default()));
        let report2 = Rc::clone(&report);
        sim.spawn("copier", async move {
            let cb: ProgressFn = Rc::new(|_, _, _| {});
            *report2.borrow_mut() = d2.execute_batch(&core, &[task2], cb).await;
        });
        sim.run();
        let mut intact = true;
        for p in 0..16u32 {
            let mut s = vec![0u8; PAGE_SIZE];
            let mut dd = vec![0u8; PAGE_SIZE];
            pm.read(FrameId(src0.0 + p), 0, &mut s);
            pm.read(FrameId(dst0.0 + p), 0, &mut dd);
            if s != dd {
                intact = false;
            }
        }
        let r = *report.borrow();
        (r, d.take_corrupted(), intact, eng.corrupt_quarantined())
    }

    #[test]
    fn verify_off_lets_silent_corruption_through() {
        let (r, unrepaired, intact, _) = run_with_flips(VerifyPolicy::Off);
        assert!(r.dma_bytes > 0, "DMA must have engaged");
        assert_eq!(r.corruptions, 0, "nothing looked, nothing found");
        assert!(unrepaired.is_empty());
        assert!(!intact, "the corruption landed and nobody noticed");
    }

    #[test]
    fn full_verify_detects_strikes_channel_and_repairs() {
        let (r, unrepaired, intact, corrupt_quarantined) = run_with_flips(VerifyPolicy::Full);
        assert!(r.corruptions > 0, "every DMA transfer was flipped");
        assert_eq!(r.repairs, r.corruptions, "all repairable: source intact");
        assert!(unrepaired.is_empty());
        assert!(intact, "repair healed every flipped transfer");
        assert_eq!(
            corrupt_quarantined, 1,
            "the flaky channel was retired by verified strikes"
        );
    }

    #[test]
    fn no_dma_dispatcher_is_pure_cpu() {
        let pm = Rc::new(PhysMem::new(128, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 1);
        let d = Rc::new(Dispatcher::new(Rc::clone(&pm), cost, None));
        let task = split_pages(planned(&pm, 1, 8));
        let core = m.core(0);
        let d2 = Rc::clone(&d);
        let report = Rc::new(RefCell::new(DispatchReport::default()));
        let report2 = Rc::clone(&report);
        sim.spawn("copier", async move {
            let cb: ProgressFn = Rc::new(|_, _, _| {});
            *report2.borrow_mut() = d2.execute_batch(&core, &[task], cb).await;
        });
        sim.run();
        let r = *report.borrow();
        assert_eq!(r.dma_bytes, 0);
        assert_eq!(r.cpu_bytes, 8 * PAGE_SIZE);
    }

    #[test]
    fn piggyback_beats_cpu_only_on_large_copies() {
        // The headline of Fig. 9: AVX+DMA in parallel outruns AVX alone.
        fn run(with_dma: bool) -> Nanos {
            let pm = Rc::new(PhysMem::new(600, AllocPolicy::Sequential));
            let cost = Rc::new(CostModel::default());
            let mut sim = Sim::new();
            let h = sim.handle();
            let m = Machine::new(&h, 1);
            let dma = with_dma.then(|| DmaEngine::new(&h, Rc::clone(&pm), Rc::clone(&cost)));
            let d = Rc::new(Dispatcher::new(Rc::clone(&pm), cost, dma));
            let task = split_pages(planned(&pm, 1, 64)); // 256 KB
            let core = m.core(0);
            sim.spawn("copier", async move {
                let cb: ProgressFn = Rc::new(|_, _, _| {});
                d.execute_batch(&core, &[task], cb).await;
            });
            sim.run()
        }
        let cpu_only = run(false);
        let hybrid = run(true);
        assert!(
            hybrid < cpu_only,
            "hybrid {hybrid} should beat cpu-only {cpu_only}"
        );
        // Ideal speedup is 1/(1-dma_share) ≈ 1.38; allow slack for
        // submission costs and integer page granularity.
        let speedup = cpu_only.as_nanos() as f64 / hybrid.as_nanos() as f64;
        assert!(speedup > 1.15, "speedup = {speedup}");
    }
}
