//! Simulated DMA engine (Intel I/OAT stand-in).
//!
//! The engine is a device: it owns per-channel descriptor queues and one
//! device task per channel that processes descriptors sequentially in
//! *device time* — no simulated core is consumed while a transfer runs,
//! which is exactly why piggybacking it under AVX copies is profitable
//! (§4.3). The CPU-side costs (descriptor submission, completion checks)
//! are charged by the dispatcher.
//!
//! Failure model: when a [`FaultPlan`] is attached, each descriptor may be
//! hit by a transient error (fails after partial device time; a resubmit
//! succeeds), a hard channel death (the channel is quarantined and every
//! descriptor on it fails with [`DmaError::ChannelDead`]), or a completion
//! timeout (the device stalls far beyond the modeled transfer time until
//! the submitter cancels). A failed or cancelled descriptor never moves
//! bytes and never fires its `on_done` callback, so progress accounting
//! stays exact across recovery.
//!
//! Silent corruption is the one failure class completion status cannot
//! see: a transfer hit by a seeded [`SilentCorruption`] draw lands
//! *wrong* bytes (one bit flipped in flight, or the payload rotated to a
//! wrong destination offset) and still reports `Done` and fires
//! `on_done`. Detection is the dispatcher's job (digest verification);
//! when it catches a mismatch it calls [`DmaEngine::note_corruption`] so
//! a channel that repeatedly corrupts is quarantined like one that died.
//!
//! Constraints mirrored from real hardware: each descriptor's source and
//! destination must be physically contiguous ranges.

use std::cell::Cell;
use std::rc::Rc;

use copier_mem::PhysMem;
use copier_sim::{Chan, DmaFault, FaultPlan, Nanos, Notify, SilentCorruption, SimHandle};

use crate::cost::CostModel;
use crate::units::{copy_extent_pair, SubTask};

/// Why a DMA descriptor failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// Transient hardware error; resubmission is expected to succeed.
    Transient,
    /// The channel died (quarantined); resubmit elsewhere or fall back.
    ChannelDead,
    /// The transfer was cancelled after exceeding its completion budget.
    Timeout,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Pending,
    Done,
    Failed(DmaError),
}

/// Completion state of one submitted descriptor.
pub struct DmaCompletion {
    state: Cell<State>,
    /// Set by the submitter to withdraw the descriptor; the device discards
    /// a cancelled descriptor without moving bytes or firing callbacks.
    cancelled: Cell<bool>,
    notify: Notify,
    /// The subtask the descriptor covered (for progress reporting).
    pub subtask: SubTask,
    /// The channel the descriptor was queued on.
    pub channel: usize,
}

impl DmaCompletion {
    /// Whether the transfer finished successfully.
    pub fn is_done(&self) -> bool {
        self.state.get() == State::Done
    }

    /// The failure, if the transfer failed.
    pub fn error(&self) -> Option<DmaError> {
        match self.state.get() {
            State::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// Whether the descriptor reached a terminal state (done or failed).
    pub fn is_settled(&self) -> bool {
        self.state.get() != State::Pending
    }

    /// Withdraws the descriptor: the device will discard it instead of
    /// copying. Safe to call at any point; a no-op once settled.
    pub fn cancel(&self) {
        self.cancelled.set(true);
    }

    /// Whether the submitter cancelled this descriptor.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.get()
    }

    /// Waits (in virtual time) for the transfer to settle.
    pub async fn wait(&self) {
        if !self.is_settled() {
            self.notify.notified().await;
            debug_assert!(self.is_settled());
        }
    }
}

/// Device-context completion callback: invoked the moment data lands.
pub type DoneFn = Box<dyn Fn(&SubTask)>;

struct Descriptor {
    st: SubTask,
    completion: Rc<DmaCompletion>,
    /// Invoked in device context the moment the data lands — drives
    /// fine-grained descriptor-bitmap updates. Never invoked on failure.
    on_done: Option<DoneFn>,
}

/// Statistics of the engine since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Descriptors completed.
    pub transfers: u64,
    /// Bytes moved by the device.
    pub bytes: u64,
    /// Total device busy time (successful transfers).
    pub busy: Nanos,
    /// Descriptors that failed (any [`DmaError`]) or were discarded after
    /// cancellation.
    pub failed: u64,
    /// Descriptors whose landed bytes were silently damaged by an
    /// injected corruption draw (the transfer still reported `Done`).
    /// Only draws that actually changed bytes count — a misdirect that
    /// rotates a uniform payload onto itself is a physical no-op.
    pub corrupted: u64,
}

struct Channel {
    queue: Chan<Descriptor>,
    dead: Cell<bool>,
    /// Verified-corruption strikes recorded against this channel by
    /// [`DmaEngine::note_corruption`].
    corrupt_hits: Cell<u32>,
}

/// The simulated DMA engine.
pub struct DmaEngine {
    pm: Rc<PhysMem>,
    cost: Rc<CostModel>,
    channels: Vec<Rc<Channel>>,
    next: Cell<usize>,
    plan: Option<Rc<FaultPlan>>,
    stats: Rc<Cell<DmaStats>>,
    /// Verified-corruption strikes after which a channel is quarantined
    /// (0 disables corruption-driven quarantine).
    corrupt_threshold: Cell<u32>,
    /// Channels quarantined by corruption strikes (disjoint from hard
    /// deaths, which flip `Channel::dead` directly).
    corrupt_quarantined: Cell<u64>,
}

/// Applies one silent-corruption decision to the *landed* destination
/// bytes. Returns whether any byte actually changed (a misdirect can
/// rotate a uniform payload onto itself).
fn apply_corruption(pm: &PhysMem, st: &SubTask, c: SilentCorruption) -> bool {
    let len = st.len();
    if len == 0 {
        return false;
    }
    match c {
        SilentCorruption::BitFlip { pos } => {
            let bit = (pos % (len as u64 * 8)) as usize;
            let mut byte = [0u8];
            pm.read_run(st.dst.frame, st.dst.off + bit / 8, &mut byte);
            byte[0] ^= 1 << (bit % 8);
            pm.write_run(st.dst.frame, st.dst.off + bit / 8, &byte);
            true
        }
        SilentCorruption::Misdirect { shift } => {
            if len < 2 {
                return false;
            }
            let s = 1 + (shift % (len as u64 - 1)) as usize;
            let mut buf = vec![0u8; len];
            pm.read_run(st.dst.frame, st.dst.off, &mut buf);
            let before = buf.clone();
            buf.rotate_right(s);
            if buf == before {
                return false;
            }
            pm.write_run(st.dst.frame, st.dst.off, &buf);
            true
        }
    }
}

fn fail(d: &Descriptor, err: DmaError, stats: &Cell<DmaStats>) {
    d.completion.state.set(State::Failed(err));
    d.completion.notify.notify_all();
    let mut s = stats.get();
    s.failed += 1;
    stats.set(s);
}

impl DmaEngine {
    /// Creates a healthy single-channel engine (the pre-fault-model shape).
    pub fn new(h: &SimHandle, pm: Rc<PhysMem>, cost: Rc<CostModel>) -> Rc<Self> {
        Self::with_channels(h, pm, cost, 1, None)
    }

    /// Creates an engine with `channels` independent channels and an
    /// optional fault plan consulted per descriptor.
    pub fn with_channels(
        h: &SimHandle,
        pm: Rc<PhysMem>,
        cost: Rc<CostModel>,
        channels: usize,
        plan: Option<Rc<FaultPlan>>,
    ) -> Rc<Self> {
        assert!(channels > 0, "DMA engine needs at least one channel");
        let stats = Rc::new(Cell::new(DmaStats::default()));
        let chans: Vec<Rc<Channel>> = (0..channels)
            .map(|_| {
                Rc::new(Channel {
                    queue: Chan::new(),
                    dead: Cell::new(false),
                    corrupt_hits: Cell::new(0),
                })
            })
            .collect();
        for (i, ch) in chans.iter().enumerate() {
            let ch = Rc::clone(ch);
            let h2 = h.clone();
            let pm2 = Rc::clone(&pm);
            let cost2 = Rc::clone(&cost);
            let plan2 = plan.clone();
            let stats2 = Rc::clone(&stats);
            h.spawn(&format!("dma-chan{i}"), async move {
                loop {
                    let d = match ch.queue.recv().await {
                        Some(d) => d,
                        None => break,
                    };
                    if d.completion.cancelled.get() {
                        fail(&d, DmaError::Timeout, &stats2);
                        continue;
                    }
                    if ch.dead.get() {
                        fail(&d, DmaError::ChannelDead, &stats2);
                        continue;
                    }
                    let dur = cost2.dma_transfer(d.st.len());
                    match plan2.as_ref().and_then(|p| p.decide_dma()) {
                        Some(DmaFault::HardFail) => {
                            // The channel dies mid-transfer: partial device
                            // time burned, no bytes land, and the channel is
                            // quarantined for good.
                            h2.sleep(Nanos(dur.as_nanos() / 4)).await;
                            ch.dead.set(true);
                            fail(&d, DmaError::ChannelDead, &stats2);
                            continue;
                        }
                        Some(DmaFault::Transient) => {
                            h2.sleep(Nanos(dur.as_nanos() / 4)).await;
                            fail(&d, DmaError::Transient, &stats2);
                            continue;
                        }
                        Some(DmaFault::Timeout) => {
                            // Stall far beyond the modeled time; the
                            // submitter's wait budget expires long before
                            // this sleep does and cancels the descriptor.
                            h2.sleep(Nanos(dur.as_nanos().max(1) * cost2.dma_timeout_stall))
                                .await;
                        }
                        None => {
                            // Device time: a plain sleep, not a core advance.
                            h2.sleep(dur).await;
                        }
                    }
                    if d.completion.cancelled.get() {
                        fail(&d, DmaError::Timeout, &stats2);
                        continue;
                    }
                    copy_extent_pair(&pm2, d.st.dst, d.st.src);
                    // Silent corruption: consulted once per transfer that
                    // lands bytes, *after* the copy — the damage hits the
                    // landed destination, and the descriptor still reports
                    // Done and fires on_done below.
                    let damaged = plan2
                        .as_ref()
                        .and_then(|p| p.decide_corrupt())
                        .is_some_and(|c| apply_corruption(&pm2, &d.st, c));
                    d.completion.state.set(State::Done);
                    d.completion.notify.notify_all();
                    if let Some(cb) = &d.on_done {
                        cb(&d.st);
                    }
                    let mut s = stats2.get();
                    s.transfers += 1;
                    s.bytes += d.st.len() as u64;
                    s.busy += dur;
                    s.corrupted += damaged as u64;
                    stats2.set(s);
                }
            });
        }
        Rc::new(DmaEngine {
            pm,
            cost,
            channels: chans,
            next: Cell::new(0),
            plan,
            stats,
            corrupt_threshold: Cell::new(2),
            corrupt_quarantined: Cell::new(0),
        })
    }

    /// Submits one descriptor to the next live channel (round-robin).
    /// Returns its completion handle; if every channel is quarantined the
    /// handle is already failed with [`DmaError::ChannelDead`].
    ///
    /// The *CPU* cost of submission ([`CostModel::dma_submit`]) must be
    /// charged by the caller on its own core; this method only queues
    /// device work.
    pub fn submit(&self, st: SubTask, on_done: Option<DoneFn>) -> Rc<DmaCompletion> {
        let n = self.channels.len();
        let start = self.next.get();
        let chosen = (0..n)
            .map(|k| (start + k) % n)
            .find(|&i| !self.channels[i].dead.get());
        let Some(i) = chosen else {
            let mut s = self.stats.get();
            s.failed += 1;
            self.stats.set(s);
            return Rc::new(DmaCompletion {
                state: Cell::new(State::Failed(DmaError::ChannelDead)),
                cancelled: Cell::new(false),
                notify: Notify::new(),
                subtask: st,
                channel: start % n,
            });
        };
        self.next.set((i + 1) % n);
        let completion = Rc::new(DmaCompletion {
            state: Cell::new(State::Pending),
            cancelled: Cell::new(false),
            notify: Notify::new(),
            subtask: st,
            channel: i,
        });
        self.channels[i].queue.send(Descriptor {
            st,
            completion: Rc::clone(&completion),
            on_done,
        });
        completion
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Quarantined (dead) channels.
    pub fn quarantined(&self) -> usize {
        self.channels.iter().filter(|c| c.dead.get()).count()
    }

    /// Channels still accepting work.
    pub fn live_channels(&self) -> usize {
        self.channels.len() - self.quarantined()
    }

    /// Whether a fault plan is attached (failures are possible).
    pub fn has_fault_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// Sets the verified-corruption strike count after which a channel
    /// is quarantined (0 disables corruption-driven quarantine).
    pub fn set_corruption_threshold(&self, strikes: u32) {
        self.corrupt_threshold.set(strikes);
    }

    /// Records one *verified* corruption against `channel` — called by
    /// the dispatcher when digest verification catches a transfer that
    /// reported success with wrong bytes. At the configured threshold
    /// the channel is quarantined exactly like a hard death (every
    /// later descriptor fails [`DmaError::ChannelDead`]). Returns
    /// whether this strike retired the channel.
    pub fn note_corruption(&self, channel: usize) -> bool {
        let Some(ch) = self.channels.get(channel) else {
            return false;
        };
        let hits = ch.corrupt_hits.get() + 1;
        ch.corrupt_hits.set(hits);
        let threshold = self.corrupt_threshold.get();
        if threshold > 0 && hits >= threshold && !ch.dead.get() {
            ch.dead.set(true);
            self.corrupt_quarantined
                .set(self.corrupt_quarantined.get() + 1);
            return true;
        }
        false
    }

    /// Channels quarantined because of verified-corruption strikes.
    pub fn corrupt_quarantined(&self) -> u64 {
        self.corrupt_quarantined.get()
    }

    /// Device statistics.
    pub fn stats(&self) -> DmaStats {
        self.stats.get()
    }

    /// The engine's physical pool (for diagnostics).
    pub fn phys(&self) -> &Rc<PhysMem> {
        &self.pm
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &Rc<CostModel> {
        &self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::{AllocPolicy, Extent};
    use copier_sim::{FaultConfig, Sim};

    fn subtask(pm: &PhysMem, len: usize) -> SubTask {
        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        pm.write(a, 0, &data);
        SubTask {
            task_off: 0,
            src: Extent {
                frame: a,
                off: 0,
                len,
            },
            dst: Extent {
                frame: b,
                off: 0,
                len,
            },
        }
    }

    #[test]
    fn dma_moves_bytes_in_device_time() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(8, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let eng = DmaEngine::new(&h, Rc::clone(&pm), Rc::clone(&cost));

        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        pm.write(a, 0, b"dma payload");
        let st = SubTask {
            task_off: 0,
            src: Extent {
                frame: a,
                off: 0,
                len: 11,
            },
            dst: Extent {
                frame: b,
                off: 0,
                len: 11,
            },
        };
        let eng2 = Rc::clone(&eng);
        let pm2 = Rc::clone(&pm);
        let h2 = h.clone();
        sim.spawn("driver", async move {
            let t0 = h2.now();
            let c = eng2.submit(st, None);
            // Submission returns immediately; data not yet there.
            assert!(!c.is_done());
            c.wait().await;
            assert_eq!(h2.now() - t0, CostModel::default().dma_transfer(11));
            let mut buf = [0u8; 11];
            pm2.read(b, 0, &mut buf);
            assert_eq!(&buf, b"dma payload");
        });
        sim.run();
        assert_eq!(eng.stats().transfers, 1);
        assert_eq!(eng.stats().bytes, 11);
    }

    #[test]
    fn descriptors_processed_in_order_with_callbacks() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(8, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let eng = DmaEngine::new(&h, Rc::clone(&pm), cost);
        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut completions = Vec::new();
        for i in 0..3usize {
            let st = SubTask {
                task_off: i * 100,
                src: Extent {
                    frame: a,
                    off: i * 100,
                    len: 100,
                },
                dst: Extent {
                    frame: b,
                    off: i * 100,
                    len: 100,
                },
            };
            let log2 = Rc::clone(&log);
            completions.push(eng.submit(
                st,
                Some(Box::new(move |s: &SubTask| {
                    log2.borrow_mut().push(s.task_off);
                })),
            ));
        }
        let last = completions.pop().unwrap();
        sim.spawn("driver", async move {
            last.wait().await;
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 100, 200]);
        assert!(completions.iter().all(|c| c.is_done()));
    }

    #[test]
    fn hard_failure_quarantines_channel_and_fails_descriptor() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(16, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let plan = FaultPlan::new(FaultConfig {
            seed: 1,
            dma_hard_prob: 1.0,
            ..Default::default()
        });
        let eng = DmaEngine::with_channels(&h, Rc::clone(&pm), cost, 1, Some(plan));
        let st = subtask(&pm, 256);
        let dst = st.dst.frame;
        let fired = Rc::new(Cell::new(false));
        let fired2 = Rc::clone(&fired);
        let eng2 = Rc::clone(&eng);
        sim.spawn("driver", async move {
            let c = eng2.submit(st, Some(Box::new(move |_| fired2.set(true))));
            c.wait().await;
            assert_eq!(c.error(), Some(DmaError::ChannelDead));
            // A second submit finds no live channel: fails synchronously.
            let c2 = eng2.submit(st, None);
            assert_eq!(c2.error(), Some(DmaError::ChannelDead));
        });
        sim.run();
        assert!(!fired.get(), "on_done must not fire for a failed transfer");
        assert_eq!(eng.quarantined(), 1);
        assert_eq!(eng.live_channels(), 0);
        assert_eq!(eng.stats().transfers, 0);
        // No bytes landed.
        let mut buf = [0u8; 256];
        pm.read(dst, 0, &mut buf);
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn transient_failure_then_resubmit_succeeds() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(16, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        // Seeded plan: first descriptor transient-fails, later ones pass
        // (probability 0.4 with this seed: fail, then pass).
        let plan = FaultPlan::new(FaultConfig {
            seed: 3,
            dma_transient_prob: 0.4,
            ..Default::default()
        });
        let eng = DmaEngine::with_channels(&h, Rc::clone(&pm), cost, 1, Some(plan));
        let st = subtask(&pm, 512);
        let dst = st.dst.frame;
        let eng2 = Rc::clone(&eng);
        sim.spawn("driver", async move {
            let mut c = eng2.submit(st, None);
            c.wait().await;
            let mut resubmits = 0;
            while let Some(err) = c.error() {
                assert_eq!(err, DmaError::Transient);
                c = eng2.submit(st, None);
                c.wait().await;
                resubmits += 1;
                assert!(resubmits < 32, "transient storm never drains");
            }
            assert!(c.is_done());
        });
        sim.run();
        assert_eq!(eng.quarantined(), 0);
        assert!(eng.stats().failed > 0);
        let mut buf = [0u8; 512];
        pm.read(dst, 0, &mut buf);
        assert_eq!(buf[13], 13 % 251);
    }

    #[test]
    fn cancelled_timeout_descriptor_never_lands_bytes() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(16, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let plan = FaultPlan::new(FaultConfig {
            seed: 2,
            dma_timeout_prob: 1.0,
            ..Default::default()
        });
        let eng = DmaEngine::with_channels(&h, Rc::clone(&pm), Rc::clone(&cost), 1, Some(plan));
        let st = subtask(&pm, 1024);
        let dst = st.dst.frame;
        let fired = Rc::new(Cell::new(false));
        let fired2 = Rc::clone(&fired);
        let eng2 = Rc::clone(&eng);
        let h2 = h.clone();
        sim.spawn("driver", async move {
            let c = eng2.submit(st, Some(Box::new(move |_| fired2.set(true))));
            // Give up long before the stalled device would finish.
            h2.sleep(Nanos(cost.dma_transfer(1024).as_nanos() * 2))
                .await;
            assert!(!c.is_settled(), "device is stalling");
            c.cancel();
            c.wait().await;
            assert_eq!(c.error(), Some(DmaError::Timeout));
        });
        sim.run();
        assert!(!fired.get());
        let mut buf = [0u8; 1024];
        pm.read(dst, 0, &mut buf);
        assert!(
            buf.iter().all(|&x| x == 0),
            "cancelled transfer landed bytes"
        );
    }

    #[test]
    fn bit_flip_lands_wrong_bytes_but_reports_success() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(16, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let plan = FaultPlan::new(FaultConfig {
            seed: 5,
            dma_flip_prob: 1.0,
            ..Default::default()
        });
        let eng = DmaEngine::with_channels(&h, Rc::clone(&pm), cost, 1, Some(plan));
        let st = subtask(&pm, 512);
        let (src, dst) = (st.src.frame, st.dst.frame);
        let fired = Rc::new(Cell::new(false));
        let fired2 = Rc::clone(&fired);
        let eng2 = Rc::clone(&eng);
        sim.spawn("driver", async move {
            let c = eng2.submit(st, Some(Box::new(move |_| fired2.set(true))));
            c.wait().await;
            assert!(c.is_done(), "silent corruption still reports success");
        });
        sim.run();
        assert!(fired.get(), "on_done fires — the device believes it");
        assert_eq!(eng.stats().corrupted, 1);
        let mut a = [0u8; 512];
        let mut b = [0u8; 512];
        pm.read(src, 0, &mut a);
        pm.read(dst, 0, &mut b);
        let diff_bits: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert_eq!(diff_bits, 1, "exactly one bit flipped in flight");
    }

    #[test]
    fn misdirect_rotates_payload_but_reports_success() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(16, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let plan = FaultPlan::new(FaultConfig {
            seed: 8,
            dma_misdirect_prob: 1.0,
            ..Default::default()
        });
        let eng = DmaEngine::with_channels(&h, Rc::clone(&pm), cost, 1, Some(plan));
        let st = subtask(&pm, 256); // non-uniform pattern: rotation must show
        let (src, dst) = (st.src.frame, st.dst.frame);
        let eng2 = Rc::clone(&eng);
        sim.spawn("driver", async move {
            let c = eng2.submit(st, None);
            c.wait().await;
            assert!(c.is_done());
        });
        sim.run();
        assert_eq!(eng.stats().corrupted, 1);
        let mut a = [0u8; 256];
        let mut b = [0u8; 256];
        pm.read(src, 0, &mut a);
        pm.read(dst, 0, &mut b);
        assert_ne!(a, b, "payload landed at a wrong offset");
        // Same multiset of bytes — it is a misdirection, not a flip.
        let mut sa = a;
        let mut sb = b;
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb);
    }

    #[test]
    fn corruption_strikes_quarantine_channel_at_threshold() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(16, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let eng = DmaEngine::with_channels(&h, Rc::clone(&pm), cost, 2, None);
        assert!(!eng.note_corruption(0), "first strike is below threshold");
        assert_eq!(eng.live_channels(), 2);
        assert!(eng.note_corruption(0), "second strike retires the channel");
        assert_eq!(eng.live_channels(), 1);
        assert_eq!(eng.quarantined(), 1);
        assert_eq!(eng.corrupt_quarantined(), 1);
        // Strikes on an already-dead channel don't double-count.
        assert!(!eng.note_corruption(0));
        assert_eq!(eng.corrupt_quarantined(), 1);
        // Subsequent descriptors route to the surviving channel.
        let st = subtask(&pm, 64);
        let eng2 = Rc::clone(&eng);
        sim.spawn("driver", async move {
            let c = eng2.submit(st, None);
            c.wait().await;
            assert!(c.is_done());
            assert_ne!(c.channel, 0);
        });
        sim.run();
    }

    #[test]
    fn round_robin_skips_dead_channels() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(64, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        // Kill exactly the first descriptor's channel.
        let plan = FaultPlan::new(FaultConfig {
            seed: 1,
            dma_hard_prob: 1.0,
            ..Default::default()
        });
        let eng = DmaEngine::with_channels(&h, Rc::clone(&pm), cost, 2, Some(plan));
        let st0 = subtask(&pm, 128);
        let eng2 = Rc::clone(&eng);
        sim.spawn("driver", async move {
            let c0 = eng2.submit(st0, None);
            c0.wait().await;
            assert_eq!(c0.error(), Some(DmaError::ChannelDead));
            assert_eq!(eng2.live_channels(), 1);
            // With one channel dead the plan would also kill channel 1 on
            // its next decision — but routing must at least target a live
            // channel, never the quarantined one.
            let c1 = eng2.submit(st0, None);
            assert_ne!(c1.channel, c0.channel);
        });
        sim.run();
    }
}
