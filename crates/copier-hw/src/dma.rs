//! Simulated DMA engine (Intel I/OAT stand-in).
//!
//! The engine is a device: it owns a descriptor queue and a device task
//! that processes descriptors sequentially in *device time* — no simulated
//! core is consumed while a transfer runs, which is exactly why piggybacking
//! it under AVX copies is profitable (§4.3). The CPU-side costs (descriptor
//! submission, completion checks) are charged by the dispatcher.
//!
//! Constraints mirrored from real hardware: each descriptor's source and
//! destination must be physically contiguous ranges.

use std::cell::Cell;
use std::rc::Rc;

use copier_mem::PhysMem;
use copier_sim::{Chan, Nanos, Notify, SimHandle};

use crate::cost::CostModel;
use crate::units::{copy_extent_pair, SubTask};

/// Completion state of one submitted descriptor.
pub struct DmaCompletion {
    done: Cell<bool>,
    notify: Notify,
    /// The subtask the descriptor covered (for progress reporting).
    pub subtask: SubTask,
}

impl DmaCompletion {
    /// Whether the transfer has finished.
    pub fn is_done(&self) -> bool {
        self.done.get()
    }

    /// Waits (in virtual time) for the transfer to finish.
    pub async fn wait(&self) {
        if !self.done.get() {
            self.notify.notified().await;
            debug_assert!(self.done.get());
        }
    }
}

struct Descriptor {
    st: SubTask,
    completion: Rc<DmaCompletion>,
    /// Invoked in device context the moment the data lands — drives
    /// fine-grained descriptor-bitmap updates.
    on_done: Option<Box<dyn Fn(&SubTask)>>,
}

/// Statistics of the engine since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Descriptors completed.
    pub transfers: u64,
    /// Bytes moved by the device.
    pub bytes: u64,
    /// Total device busy time.
    pub busy: Nanos,
}

/// The simulated DMA engine.
pub struct DmaEngine {
    pm: Rc<PhysMem>,
    cost: Rc<CostModel>,
    queue: Chan<Descriptor>,
    stats: Rc<Cell<DmaStats>>,
}

impl DmaEngine {
    /// Creates the engine and spawns its device task on `h`.
    pub fn new(h: &SimHandle, pm: Rc<PhysMem>, cost: Rc<CostModel>) -> Rc<Self> {
        let queue: Chan<Descriptor> = Chan::new();
        let stats = Rc::new(Cell::new(DmaStats::default()));
        let eng = Rc::new(DmaEngine {
            pm: Rc::clone(&pm),
            cost: Rc::clone(&cost),
            queue: queue.clone(),
            stats: Rc::clone(&stats),
        });
        let h2 = h.clone();
        h.spawn("dma-engine", async move {
            loop {
                let d = match queue.recv().await {
                    Some(d) => d,
                    None => break,
                };
                let dur = cost.dma_transfer(d.st.len());
                // Device time: a plain sleep, not a core advance.
                h2.sleep(dur).await;
                copy_extent_pair(&pm, d.st.dst, d.st.src);
                d.completion.done.set(true);
                d.completion.notify.notify_all();
                if let Some(cb) = &d.on_done {
                    cb(&d.st);
                }
                let mut s = stats.get();
                s.transfers += 1;
                s.bytes += d.st.len() as u64;
                s.busy += dur;
                stats.set(s);
            }
        });
        eng
    }

    /// Submits one descriptor. Returns its completion handle.
    ///
    /// The *CPU* cost of submission ([`CostModel::dma_submit`]) must be
    /// charged by the caller on its own core; this method only queues
    /// device work.
    pub fn submit(
        &self,
        st: SubTask,
        on_done: Option<Box<dyn Fn(&SubTask)>>,
    ) -> Rc<DmaCompletion> {
        let completion = Rc::new(DmaCompletion {
            done: Cell::new(false),
            notify: Notify::new(),
            subtask: st,
        });
        self.queue.send(Descriptor {
            st,
            completion: Rc::clone(&completion),
            on_done,
        });
        completion
    }

    /// Device statistics.
    pub fn stats(&self) -> DmaStats {
        self.stats.get()
    }

    /// The engine's physical pool (for diagnostics).
    pub fn phys(&self) -> &Rc<PhysMem> {
        &self.pm
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &Rc<CostModel> {
        &self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::{AllocPolicy, Extent};
    use copier_sim::Sim;

    #[test]
    fn dma_moves_bytes_in_device_time() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(8, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let eng = DmaEngine::new(&h, Rc::clone(&pm), Rc::clone(&cost));

        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        pm.write(a, 0, b"dma payload");
        let st = SubTask {
            task_off: 0,
            src: Extent {
                frame: a,
                off: 0,
                len: 11,
            },
            dst: Extent {
                frame: b,
                off: 0,
                len: 11,
            },
        };
        let eng2 = Rc::clone(&eng);
        let pm2 = Rc::clone(&pm);
        let h2 = h.clone();
        sim.spawn("driver", async move {
            let t0 = h2.now();
            let c = eng2.submit(st, None);
            // Submission returns immediately; data not yet there.
            assert!(!c.is_done());
            c.wait().await;
            assert_eq!(h2.now() - t0, CostModel::default().dma_transfer(11));
            let mut buf = [0u8; 11];
            pm2.read(b, 0, &mut buf);
            assert_eq!(&buf, b"dma payload");
        });
        sim.run();
        assert_eq!(eng.stats().transfers, 1);
        assert_eq!(eng.stats().bytes, 11);
    }

    #[test]
    fn descriptors_processed_in_order_with_callbacks() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let pm = Rc::new(PhysMem::new(8, AllocPolicy::Sequential));
        let cost = Rc::new(CostModel::default());
        let eng = DmaEngine::new(&h, Rc::clone(&pm), cost);
        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut completions = Vec::new();
        for i in 0..3usize {
            let st = SubTask {
                task_off: i * 100,
                src: Extent {
                    frame: a,
                    off: i * 100,
                    len: 100,
                },
                dst: Extent {
                    frame: b,
                    off: i * 100,
                    len: 100,
                },
            };
            let log2 = Rc::clone(&log);
            completions.push(eng.submit(
                st,
                Some(Box::new(move |s: &SubTask| {
                    log2.borrow_mut().push(s.task_off);
                })),
            ));
        }
        let last = completions.pop().unwrap();
        sim.spawn("driver", async move {
            last.wait().await;
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 100, 200]);
        assert!(completions.iter().all(|c| c.is_done()));
    }
}
