//! Simulated multi-core machine.
//!
//! Each [`Core`] is a processor-sharing resource in virtual time: simulated
//! threads consume CPU with [`Core::advance`], and concurrent demands on the
//! same core are interleaved round-robin with a configurable quantum. A core
//! also carries a tiny cache-residency model (see [`crate::cache`]) used by
//! the §6.3.5 micro-architectural experiment, and per-core busy-time
//! accounting used by the energy proxy (Fig. 13-c).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use std::task::Waker;

use crate::cache::CacheModel;
use crate::exec::SimHandle;
use crate::sync::Notify;
use crate::time::Nanos;

/// Default round-robin quantum for contended cores.
pub const DEFAULT_QUANTUM: Nanos = Nanos::from_micros(20);

struct Req {
    remaining: Cell<u64>,
    done: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

/// One simulated CPU core.
pub struct Core {
    id: usize,
    h: SimHandle,
    queue: RefCell<VecDeque<Rc<Req>>>,
    work: Notify,
    quantum: Cell<Nanos>,
    busy: Cell<u64>,
    /// Cache-residency model for the micro-architectural proxy experiment.
    pub cache: CacheModel,
}

impl Core {
    /// The core's index within its machine.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total virtual time this core has spent executing.
    pub fn busy_time(&self) -> Nanos {
        Nanos(self.busy.get())
    }

    /// Overrides the round-robin quantum (contended advances only).
    pub fn set_quantum(&self, q: Nanos) {
        self.quantum.set(q);
    }

    /// Number of threads currently queued or running on this core.
    pub fn load(&self) -> usize {
        self.queue.borrow().len()
    }

    /// Consumes `dur` of this core's time, waiting in line if contended.
    ///
    /// This is the only way simulated computation costs time: a thread that
    /// never calls `advance` is free (it models pure waiting).
    pub async fn advance(self: &Rc<Self>, dur: Nanos) {
        if dur == Nanos::ZERO {
            return;
        }
        let req = Rc::new(Req {
            remaining: Cell::new(dur.as_nanos()),
            done: Cell::new(false),
            waker: RefCell::new(None),
        });
        self.queue.borrow_mut().push_back(Rc::clone(&req));
        self.work.notify_one();
        ReqDone { req }.await;
    }

    /// Consumes core time inflated by the cache model and updates residency.
    ///
    /// Used by applications to represent "copy-irrelevant" compute whose CPI
    /// suffers when large copies evict hot data (§6.3.5 of the paper).
    pub async fn advance_cached(self: &Rc<Self>, dur: Nanos) {
        let inflated = self.cache.compute_cost(dur);
        self.advance(inflated).await;
    }

    /// The driver loop: serves queued demands round-robin.
    async fn drive(self: Rc<Self>) {
        loop {
            let next = self.queue.borrow_mut().pop_front();
            let req = match next {
                Some(r) => r,
                None => {
                    self.work.notified().await;
                    continue;
                }
            };
            let remaining = req.remaining.get();
            let slice = remaining.min(self.quantum.get().as_nanos().max(1));
            self.h.sleep(Nanos(slice)).await;
            self.busy.set(self.busy.get() + slice);
            let left = remaining - slice;
            req.remaining.set(left);
            if left == 0 {
                req.done.set(true);
                if let Some(w) = req.waker.borrow_mut().take() {
                    w.wake();
                }
            } else {
                self.queue.borrow_mut().push_back(req);
            }
        }
    }
}

struct ReqDone {
    req: Rc<Req>,
}

impl std::future::Future for ReqDone {
    type Output = ();
    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        if self.req.done.get() {
            std::task::Poll::Ready(())
        } else {
            *self.req.waker.borrow_mut() = Some(cx.waker().clone());
            std::task::Poll::Pending
        }
    }
}

/// Energy-accounting parameters for the smartphone experiments.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// Watts drawn by a core while executing.
    pub active_w: f64,
    /// Watts drawn by an idle (clock-gated) core.
    pub idle_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // Loosely a big core on a Kirin 9000S-class SoC.
        PowerModel {
            active_w: 1.8,
            idle_w: 0.05,
        }
    }
}

/// A simulated machine: a set of cores sharing one virtual clock.
pub struct Machine {
    h: SimHandle,
    cores: Vec<Rc<Core>>,
}

impl Machine {
    /// Builds a machine with `n` cores and spawns their driver tasks.
    pub fn new(h: &SimHandle, n: usize) -> Rc<Self> {
        assert!(n > 0, "a machine needs at least one core");
        let mut cores = Vec::with_capacity(n);
        for id in 0..n {
            let core = Rc::new(Core {
                id,
                h: h.clone(),
                queue: RefCell::new(VecDeque::new()),
                work: Notify::new(),
                quantum: Cell::new(DEFAULT_QUANTUM),
                busy: Cell::new(0),
                cache: CacheModel::default_enabled(false),
            });
            h.spawn(&format!("core-{id}"), Rc::clone(&core).drive());
            cores.push(core);
        }
        Rc::new(Machine {
            h: h.clone(),
            cores,
        })
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Returns core `id`.
    pub fn core(&self, id: usize) -> Rc<Core> {
        Rc::clone(&self.cores[id])
    }

    /// All cores.
    pub fn cores(&self) -> &[Rc<Core>] {
        &self.cores
    }

    /// The simulation handle this machine runs on.
    pub fn handle(&self) -> SimHandle {
        self.h.clone()
    }

    /// Total busy time across all cores.
    pub fn total_busy(&self) -> Nanos {
        Nanos(self.cores.iter().map(|c| c.busy.get()).sum())
    }

    /// Energy in joules consumed up to `now`, under `pm`.
    ///
    /// Idle time is `num_cores × now − total_busy`.
    pub fn energy_joules(&self, pm: PowerModel, now: Nanos) -> f64 {
        let busy_s = self.total_busy().as_secs_f64();
        let wall_s = now.as_secs_f64() * self.cores.len() as f64;
        let idle_s = (wall_s - busy_s).max(0.0);
        busy_s * pm.active_w + idle_s * pm.idle_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Sim;
    use std::cell::Cell;

    #[test]
    fn advance_costs_exact_time_uncontended() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 1);
        let core = m.core(0);
        let t = Rc::new(Cell::new(Nanos::ZERO));
        let t2 = Rc::clone(&t);
        let h2 = h.clone();
        sim.spawn("w", async move {
            core.advance(Nanos::from_micros(123)).await;
            t2.set(h2.now());
        });
        sim.run();
        assert_eq!(t.get(), Nanos::from_micros(123));
        assert_eq!(m.core(0).busy_time(), Nanos::from_micros(123));
    }

    #[test]
    fn two_threads_share_a_core() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 1);
        let done = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let core = m.core(0);
            let h2 = h.clone();
            let done = Rc::clone(&done);
            sim.spawn(name, async move {
                core.advance(Nanos::from_micros(100)).await;
                done.borrow_mut().push((name, h2.now()));
            });
        }
        sim.run();
        let done = done.borrow();
        // Round-robin: both finish near 200us (within one quantum of each other),
        // not one at 100us and one at 200us.
        assert_eq!(done.len(), 2);
        let t_last = done.iter().map(|(_, t)| *t).max().unwrap();
        let t_first = done.iter().map(|(_, t)| *t).min().unwrap();
        assert_eq!(t_last, Nanos::from_micros(200));
        assert!(t_last - t_first <= DEFAULT_QUANTUM);
    }

    #[test]
    fn threads_on_distinct_cores_run_in_parallel() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 2);
        let end = Rc::new(Cell::new(Nanos::ZERO));
        for id in 0..2 {
            let core = m.core(id);
            let h2 = h.clone();
            let end2 = Rc::clone(&end);
            sim.spawn("w", async move {
                core.advance(Nanos::from_micros(50)).await;
                end2.set(end2.get().max(h2.now()));
            });
        }
        sim.run();
        // Parallel, so 50us total, not 100us.
        assert_eq!(end.get(), Nanos::from_micros(50));
        assert_eq!(m.total_busy(), Nanos::from_micros(100));
    }

    #[test]
    fn energy_accounts_busy_and_idle() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 2);
        let core = m.core(0);
        sim.spawn("w", async move {
            core.advance(Nanos::from_secs(1)).await;
        });
        let now = sim.run();
        assert_eq!(now, Nanos::from_secs(1));
        let pm = PowerModel {
            active_w: 2.0,
            idle_w: 0.5,
        };
        // 1s busy * 2W + 1s idle * 0.5W.
        let e = m.energy_joules(pm, now);
        assert!((e - 2.5).abs() < 1e-9, "e = {e}");
    }

    #[test]
    fn zero_advance_is_free() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(&h, 1);
        let core = m.core(0);
        sim.spawn("w", async move {
            core.advance(Nanos::ZERO).await;
        });
        assert_eq!(sim.run(), Nanos::ZERO);
    }
}
