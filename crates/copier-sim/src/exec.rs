//! Single-threaded deterministic executor with virtual time.
//!
//! The executor owns a set of tasks (futures), a FIFO ready queue, and a
//! timer heap keyed by virtual time. A run proceeds by draining the ready
//! queue; when no task is ready, the clock jumps to the earliest timer and
//! the timer's waker fires. Determinism follows from:
//!
//! * a single host thread (no OS scheduling nondeterminism),
//! * FIFO ready-queue order,
//! * a monotonic sequence number breaking ties between equal-time timers.
//!
//! Simulated "threads" are ordinary futures spawned with [`SimHandle::spawn`].

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::Nanos;

/// Identifies a spawned task within one simulation.
pub type TaskId = usize;

/// The shared ready queue, written by wakers (which must be `Send + Sync`).
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

/// Waker payload: re-enqueues the owning task on wake.
struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.queue.lock().unwrap().push_back(self.id);
    }
}

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

struct TaskSlot {
    future: Option<BoxFuture>,
    /// Human-readable label used for debugging and trace output.
    name: String,
    /// Set once the future completes; the slot is then recycled.
    done: bool,
}

struct TimerEntry {
    when: Nanos,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.when, self.seq).cmp(&(other.when, other.seq))
    }
}

/// Executor internals shared between the driver and task handles.
pub(crate) struct Kernel {
    tasks: RefCell<Vec<Option<TaskSlot>>>,
    free: RefCell<Vec<TaskId>>,
    ready: Arc<ReadyQueue>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    now: Cell<Nanos>,
    seq: Cell<u64>,
    live_tasks: Cell<usize>,
    /// Total tasks ever spawned, for statistics.
    spawned: Cell<usize>,
}

impl Kernel {
    fn new() -> Rc<Self> {
        Rc::new(Kernel {
            tasks: RefCell::new(Vec::new()),
            free: RefCell::new(Vec::new()),
            ready: Arc::new(ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
            }),
            timers: RefCell::new(BinaryHeap::new()),
            now: Cell::new(Nanos::ZERO),
            seq: Cell::new(0),
            live_tasks: Cell::new(0),
            spawned: Cell::new(0),
        })
    }

    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    fn register_timer(&self, when: Nanos, waker: Waker) {
        debug_assert!(when >= self.now.get(), "timer scheduled in the past");
        self.timers.borrow_mut().push(Reverse(TimerEntry {
            when,
            seq: self.next_seq(),
            waker,
        }));
    }

    fn spawn_boxed(&self, name: &str, fut: BoxFuture) -> TaskId {
        let slot = TaskSlot {
            future: Some(fut),
            name: name.to_string(),
            done: false,
        };
        let id = if let Some(id) = self.free.borrow_mut().pop() {
            self.tasks.borrow_mut()[id] = Some(slot);
            id
        } else {
            let mut tasks = self.tasks.borrow_mut();
            tasks.push(Some(slot));
            tasks.len() - 1
        };
        self.live_tasks.set(self.live_tasks.get() + 1);
        self.spawned.set(self.spawned.get() + 1);
        self.ready.queue.lock().unwrap().push_back(id);
        id
    }

    /// Polls one task to completion-or-pending. Returns false if the id is stale.
    fn poll_task(self: &Rc<Self>, id: TaskId) -> bool {
        // Take the future out of the slot so the task may re-borrow the
        // kernel (spawn, timers) while being polled.
        let mut fut = {
            let mut tasks = self.tasks.borrow_mut();
            match tasks.get_mut(id).and_then(|s| s.as_mut()) {
                Some(slot) if !slot.done => match slot.future.take() {
                    Some(f) => f,
                    // Already being polled higher up the stack (cannot
                    // happen with a single-threaded driver) or spurious.
                    None => return false,
                },
                _ => return false,
            }
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.ready),
        }));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut tasks = self.tasks.borrow_mut();
                if let Some(slot) = tasks.get_mut(id) {
                    *slot = None;
                }
                self.free.borrow_mut().push(id);
                self.live_tasks.set(self.live_tasks.get() - 1);
                true
            }
            Poll::Pending => {
                let mut tasks = self.tasks.borrow_mut();
                if let Some(Some(slot)) = tasks.get_mut(id).map(|s| s.as_mut()) {
                    slot.future = Some(fut);
                }
                true
            }
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// # Examples
///
/// ```
/// use copier_sim::{Sim, Nanos};
///
/// let mut sim = Sim::new();
/// let h = sim.handle();
/// sim.spawn("hello", async move {
///     h.sleep(Nanos::from_micros(5)).await;
///     assert_eq!(h.now(), Nanos::from_micros(5));
/// });
/// sim.run();
/// ```
pub struct Sim {
    kernel: Rc<Kernel>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation at virtual time zero.
    pub fn new() -> Self {
        Sim {
            kernel: Kernel::new(),
        }
    }

    /// Returns a cloneable handle usable from inside tasks.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            kernel: Rc::clone(&self.kernel),
        }
    }

    /// Spawns a root task. See [`SimHandle::spawn`].
    pub fn spawn<F, T>(&mut self, name: &str, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        self.handle().spawn(name, fut)
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.kernel.now.get()
    }

    /// Runs until no task is ready and no timer is pending.
    ///
    /// Returns the final virtual time. Tasks that are blocked forever (e.g.
    /// waiting on a notification that never comes) are abandoned; use
    /// [`Sim::live_tasks`] to detect leaks in tests.
    pub fn run(&mut self) -> Nanos {
        self.run_until(Nanos(u64::MAX))
    }

    /// Runs until the given virtual deadline (exclusive for timers beyond it).
    pub fn run_until(&mut self, deadline: Nanos) -> Nanos {
        loop {
            // Drain everything runnable at the current instant.
            loop {
                let next = self.kernel.ready.queue.lock().unwrap().pop_front();
                match next {
                    Some(id) => {
                        self.kernel.poll_task(id);
                    }
                    None => break,
                }
            }
            // Advance to the earliest timer.
            let entry = {
                let mut timers = self.kernel.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if e.when <= deadline => timers.pop().map(|r| r.0),
                    _ => None,
                }
            };
            match entry {
                Some(e) => {
                    debug_assert!(e.when >= self.kernel.now.get());
                    self.kernel.now.set(e.when);
                    e.waker.wake();
                }
                None => break,
            }
        }
        self.kernel.now.get()
    }

    /// Number of tasks that have been spawned but not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.kernel.live_tasks.get()
    }

    /// Total number of tasks ever spawned.
    pub fn spawned_tasks(&self) -> usize {
        self.kernel.spawned.get()
    }

    /// Names of tasks that are still live (for leak diagnostics in tests).
    pub fn live_task_names(&self) -> Vec<String> {
        self.kernel
            .tasks
            .borrow()
            .iter()
            .flatten()
            .map(|t| t.name.clone())
            .collect()
    }
}

/// Cloneable handle for use inside simulated tasks.
#[derive(Clone)]
pub struct SimHandle {
    kernel: Rc<Kernel>,
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.kernel.now.get()
    }

    /// Spawns a task; the returned handle can be awaited for its result.
    pub fn spawn<F, T>(&self, name: &str, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState::<T> {
            result: None,
            waiter: None,
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let out = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(out);
            if let Some(w) = st.waiter.take() {
                w.wake();
            }
        };
        let id = self.kernel.spawn_boxed(name, Box::pin(wrapped));
        JoinHandle { state, id }
    }

    /// Sleeps for `dur` of virtual time without occupying any core.
    pub fn sleep(&self, dur: Nanos) -> Sleep {
        Sleep {
            kernel: Rc::clone(&self.kernel),
            deadline: Nanos(self.kernel.now.get().0.saturating_add(dur.0)),
            registered: false,
        }
    }

    /// Sleeps until an absolute virtual instant.
    pub fn sleep_until(&self, deadline: Nanos) -> Sleep {
        Sleep {
            kernel: Rc::clone(&self.kernel),
            deadline: deadline.max(self.kernel.now.get()),
            registered: false,
        }
    }

    /// Yields to other ready tasks once.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    pub(crate) fn register_timer(&self, when: Nanos, waker: Waker) {
        self.kernel.register_timer(when, waker);
    }
}

struct JoinState<T> {
    result: Option<T>,
    waiter: Option<Waker>,
}

/// Awaits completion of a spawned task.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
    id: TaskId,
}

impl<T> JoinHandle<T> {
    /// The spawned task's id (for diagnostics).
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Returns the result if the task already finished.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.result.take() {
            Poll::Ready(v)
        } else {
            st.waiter = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`SimHandle::sleep`].
pub struct Sleep {
    kernel: Rc<Kernel>,
    deadline: Nanos,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.kernel.now.get() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let deadline = self.deadline;
            self.kernel.register_timer(deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Future returned by [`SimHandle::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn sleep_advances_virtual_time() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let done = Rc::new(Cell::new(Nanos::ZERO));
        let done2 = Rc::clone(&done);
        sim.spawn("sleeper", async move {
            h.sleep(Nanos::from_micros(10)).await;
            done2.set(h.now());
        });
        let end = sim.run();
        assert_eq!(done.get(), Nanos::from_micros(10));
        assert_eq!(end, Nanos::from_micros(10));
    }

    #[test]
    fn join_handle_returns_value() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let h2 = h.clone();
        let out = Rc::new(Cell::new(0u64));
        let out2 = Rc::clone(&out);
        sim.spawn("parent", async move {
            let child = h2.spawn("child", async move { 41u64 + 1 });
            out2.set(child.await);
        });
        sim.run();
        assert_eq!(out.get(), 42);
    }

    #[test]
    fn timers_fire_in_order_with_ties_by_seq() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4u32 {
            let h = h.clone();
            let order = Rc::clone(&order);
            // Two pairs with equal deadlines; spawn order must be preserved.
            let dur = Nanos::from_micros(((i / 2) + 1) as u64);
            sim.spawn("t", async move {
                h.sleep(dur).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn yield_now_interleaves() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let h = h.clone();
            let log = Rc::clone(&log);
            sim.spawn(name, async move {
                for i in 0..2 {
                    log.borrow_mut().push(format!("{name}{i}"));
                    h.yield_now().await;
                }
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["a0", "b0", "a1", "b1"]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        sim.spawn("late", async move {
            h.sleep(Nanos::from_millis(10)).await;
            hit2.set(true);
        });
        sim.run_until(Nanos::from_millis(1));
        assert!(!hit.get());
        assert_eq!(sim.live_tasks(), 1);
        sim.run();
        assert!(hit.get());
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn determinism_same_program_same_trace() {
        fn run_once() -> Vec<(u64, u32)> {
            let mut sim = Sim::new();
            let h = sim.handle();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..8u32 {
                let h = h.clone();
                let log = Rc::clone(&log);
                sim.spawn("t", async move {
                    h.sleep(Nanos::from_nanos((i as u64 * 37) % 11)).await;
                    h.yield_now().await;
                    log.borrow_mut().push((h.now().as_nanos(), i));
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }
}
