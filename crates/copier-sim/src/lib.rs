//! # copier-sim — deterministic discrete-event simulation substrate
//!
//! The Copier reproduction runs on a *virtual-time* machine instead of real
//! silicon (see DESIGN.md §1 for the substitution rationale: the build
//! environment is a single-core VM without DMA hardware, so wall-clock
//! overlap experiments are impossible; virtual time makes them exact and
//! deterministic instead).
//!
//! This crate provides:
//!
//! * [`Sim`] / [`SimHandle`] — a single-threaded async executor whose clock
//!   advances only through timers (exact, reproducible schedules);
//! * [`Machine`] / [`Core`] — simulated cores as processor-sharing resources
//!   with round-robin quanta, busy-time accounting, and an energy proxy;
//! * [`Notify`], [`Chan`] — virtual-time synchronization primitives;
//! * [`CacheModel`] — the §6.3.5 cache-pollution proxy;
//! * [`SimRng`] — a seeded PRNG for workload generation;
//! * [`Tracer`] / [`Trace`] — the rr-style record/replay event log with
//!   lockstep divergence checking (DESIGN.md §14).
//!
//! Simulated *data is real*: higher layers really move bytes between real
//! buffers at event time; only durations come from cost models.

pub mod cache;
pub mod cpu;
pub mod exec;
pub mod fault;
pub mod rng;
pub mod sync;
pub mod time;
pub mod trace;
pub mod workload;

pub use cache::{CacheConfig, CacheModel};
pub use cpu::{Core, Machine, PowerModel, DEFAULT_QUANTUM};
pub use exec::{JoinHandle, Sim, SimHandle, TaskId};
pub use fault::{CrashPoint, DmaFault, FaultConfig, FaultLog, FaultPlan, SilentCorruption};
pub use rng::{stream_seed, SimRng};
pub use sync::{Chan, Notify};
pub use time::Nanos;
pub use trace::{Divergence, Trace, TraceEvent, Tracer};
pub use workload::{Arrival, ArrivalDist, LenDist, WorkloadConfig, WorkloadPlan};
