//! Record/replay trace layer (rr-style, ROADMAP item 4).
//!
//! A [`Trace`] is a compact binary event log of one service execution:
//! per round, the submissions drained, the fault-plan draws consumed, the
//! scheduling and admission decisions taken, and the round boundaries
//! with state hashes (pending window, address index, stats, and periodic
//! physical-memory digests). Because the simulator is deterministic, the
//! log is both a *witness* of a run and an *input* that reproduces it:
//!
//! * **Record** — a [`Tracer`] in record mode appends every event a run
//!   emits; the harness saves the encoded trace next to a failing seed.
//! * **Replay** — a tracer in replay mode feeds the recorded fault draws
//!   and submissions back to the service and checks every emitted event
//!   against the log in lockstep. The first mismatch is latched as a
//!   [`Divergence`] naming the round and position where the re-execution
//!   left the recorded timeline — the divergence checker.
//!
//! Recording is host-side only: no virtual time is charged anywhere, so
//! a traced run is byte-identical to an untraced one. Idle poll sweeps
//! emit nothing (round headers are lazy), which keeps traces proportional
//! to *work done*, not wall time. See DESIGN.md §14.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Magic prefix of an encoded trace.
pub const TRACE_MAGIC: [u8; 4] = *b"CPTR";
/// Encoding version.
pub const TRACE_VERSION: u8 = 1;

/// FNV-1a offset basis — the digest seed used by every state hash.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Folds one 64-bit word into an FNV-1a accumulator (word-at-a-time
/// variant; all trace state hashes use this so record and replay agree).
pub fn fnv_fold(h: u64, w: u64) -> u64 {
    let mut h = h;
    for b in w.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// One recorded event. Integer payloads only — the codec is a tag byte
/// plus LEB128 varints, so common events are 2–6 bytes on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Harness-defined metadata (workload parameters, case seeds). Keys
    /// are owned by the recording harness; replay reconstructs its case
    /// from them.
    Meta { key: u32, val: u64 },
    /// One workload submission (tenant, virtual instant, bytes) — the
    /// consume-from-log input for [`crate::workload::WorkloadPlan`].
    Submission { tenant: u32, at: u64, len: u64 },
    /// A batch of race instants drawn from the fault plan.
    RaceTimes { times: Vec<u64> },
    /// A service round began (lazy: only emitted for rounds that produce
    /// at least one other event).
    RoundStart { round: u64, now: u64 },
    /// The drain boundary: copy entries and sync tasks pulled this round.
    Drained { copies: u64, syncs: u64 },
    /// One admission decision at the drain boundary.
    Admit {
        client: u32,
        len: u64,
        admitted: bool,
    },
    /// The scheduler picked a client this round.
    SchedPick { client: u32 },
    /// One DMA fault-plan draw: 0 none, 1 transient, 2 hard, 3 timeout.
    DmaDraw { fault: u8 },
    /// One ATCache staleness draw.
    AtcDraw { stale: bool },
    /// A descriptor state transition: a window entry was finalized.
    /// `fault` is 0 for clean completion (see the service's encoding).
    TaskDone { tid: u64, fault: u8 },
    /// Round boundary with state hashes: pending window, address index,
    /// service stats.
    RoundEnd {
        round: u64,
        pending: u64,
        index: u64,
        stats: u64,
    },
    /// Periodic physical-memory digest (checkpoint granularity; see
    /// DESIGN.md §14 for why it is not per-round).
    MemDigest { round: u64, digest: u64 },
    /// One crash-oracle draw at a round sub-step (`point` is the
    /// [`crate::fault::CrashPoint`] wire code; `fire` whether the
    /// service died there).
    CrashDraw { point: u8, fire: bool },
    /// One silent-corruption draw for a DMA transfer: `kind` is 0 for
    /// none, 1 for a bit flip (`arg` = bit position), 2 for a
    /// misdirected write (`arg` = offset shift). See
    /// [`crate::fault::SilentCorruption`].
    CorruptDraw { kind: u8, arg: u64 },
    /// One pinned-page bit-rot draw: `hit` whether rot fires this
    /// round, `pos` the seeded bit position it lands on.
    RotDraw { hit: bool, pos: u64 },
    /// A shard's service round began (sharded control plane, DESIGN.md
    /// §17; lazy, like `RoundStart`). `round` is the shard-local round
    /// counter.
    ShardRoundStart { shard: u32, round: u64, now: u64 },
    /// Shard round boundary with that shard's state hashes: the pending
    /// windows and address indexes of its clients, plus its per-shard
    /// stats digest. Lets replay pinpoint the first divergent
    /// `(shard, round)` pair instead of just a global position.
    ShardRoundEnd {
        shard: u32,
        round: u64,
        pending: u64,
        index: u64,
        stats: u64,
    },
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = buf.get(*pos).ok_or("truncated varint")?;
        *pos += 1;
        if shift >= 64 {
            return Err("varint overflow".into());
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

impl TraceEvent {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            TraceEvent::Meta { key, val } => {
                out.push(0);
                put_varint(out, *key as u64);
                put_varint(out, *val);
            }
            TraceEvent::Submission { tenant, at, len } => {
                out.push(1);
                put_varint(out, *tenant as u64);
                put_varint(out, *at);
                put_varint(out, *len);
            }
            TraceEvent::RaceTimes { times } => {
                out.push(2);
                put_varint(out, times.len() as u64);
                for &t in times {
                    put_varint(out, t);
                }
            }
            TraceEvent::RoundStart { round, now } => {
                out.push(3);
                put_varint(out, *round);
                put_varint(out, *now);
            }
            TraceEvent::Drained { copies, syncs } => {
                out.push(4);
                put_varint(out, *copies);
                put_varint(out, *syncs);
            }
            TraceEvent::Admit {
                client,
                len,
                admitted,
            } => {
                out.push(5);
                put_varint(out, *client as u64);
                put_varint(out, *len);
                out.push(*admitted as u8);
            }
            TraceEvent::SchedPick { client } => {
                out.push(6);
                put_varint(out, *client as u64);
            }
            TraceEvent::DmaDraw { fault } => {
                out.push(7);
                out.push(*fault);
            }
            TraceEvent::AtcDraw { stale } => {
                out.push(8);
                out.push(*stale as u8);
            }
            TraceEvent::TaskDone { tid, fault } => {
                out.push(9);
                put_varint(out, *tid);
                out.push(*fault);
            }
            TraceEvent::RoundEnd {
                round,
                pending,
                index,
                stats,
            } => {
                out.push(10);
                put_varint(out, *round);
                put_varint(out, *pending);
                put_varint(out, *index);
                put_varint(out, *stats);
            }
            TraceEvent::MemDigest { round, digest } => {
                out.push(11);
                put_varint(out, *round);
                put_varint(out, *digest);
            }
            TraceEvent::CrashDraw { point, fire } => {
                out.push(12);
                out.push(*point);
                out.push(*fire as u8);
            }
            TraceEvent::CorruptDraw { kind, arg } => {
                out.push(13);
                out.push(*kind);
                put_varint(out, *arg);
            }
            TraceEvent::RotDraw { hit, pos } => {
                out.push(14);
                out.push(*hit as u8);
                put_varint(out, *pos);
            }
            TraceEvent::ShardRoundStart { shard, round, now } => {
                out.push(15);
                put_varint(out, *shard as u64);
                put_varint(out, *round);
                put_varint(out, *now);
            }
            TraceEvent::ShardRoundEnd {
                shard,
                round,
                pending,
                index,
                stats,
            } => {
                out.push(16);
                put_varint(out, *shard as u64);
                put_varint(out, *round);
                put_varint(out, *pending);
                put_varint(out, *index);
                put_varint(out, *stats);
            }
        }
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Result<TraceEvent, String> {
        let &tag = buf.get(*pos).ok_or("truncated event tag")?;
        *pos += 1;
        let byte = |pos: &mut usize| -> Result<u8, String> {
            let &b = buf.get(*pos).ok_or("truncated event byte")?;
            *pos += 1;
            Ok(b)
        };
        Ok(match tag {
            0 => TraceEvent::Meta {
                key: get_varint(buf, pos)? as u32,
                val: get_varint(buf, pos)?,
            },
            1 => TraceEvent::Submission {
                tenant: get_varint(buf, pos)? as u32,
                at: get_varint(buf, pos)?,
                len: get_varint(buf, pos)?,
            },
            2 => {
                let n = get_varint(buf, pos)? as usize;
                if n > buf.len() {
                    return Err("race-time count exceeds trace size".into());
                }
                let mut times = Vec::with_capacity(n);
                for _ in 0..n {
                    times.push(get_varint(buf, pos)?);
                }
                TraceEvent::RaceTimes { times }
            }
            3 => TraceEvent::RoundStart {
                round: get_varint(buf, pos)?,
                now: get_varint(buf, pos)?,
            },
            4 => TraceEvent::Drained {
                copies: get_varint(buf, pos)?,
                syncs: get_varint(buf, pos)?,
            },
            5 => TraceEvent::Admit {
                client: get_varint(buf, pos)? as u32,
                len: get_varint(buf, pos)?,
                admitted: byte(pos)? != 0,
            },
            6 => TraceEvent::SchedPick {
                client: get_varint(buf, pos)? as u32,
            },
            7 => TraceEvent::DmaDraw { fault: byte(pos)? },
            8 => TraceEvent::AtcDraw {
                stale: byte(pos)? != 0,
            },
            9 => TraceEvent::TaskDone {
                tid: get_varint(buf, pos)?,
                fault: byte(pos)?,
            },
            10 => TraceEvent::RoundEnd {
                round: get_varint(buf, pos)?,
                pending: get_varint(buf, pos)?,
                index: get_varint(buf, pos)?,
                stats: get_varint(buf, pos)?,
            },
            11 => TraceEvent::MemDigest {
                round: get_varint(buf, pos)?,
                digest: get_varint(buf, pos)?,
            },
            12 => TraceEvent::CrashDraw {
                point: byte(pos)?,
                fire: byte(pos)? != 0,
            },
            13 => TraceEvent::CorruptDraw {
                kind: byte(pos)?,
                arg: get_varint(buf, pos)?,
            },
            14 => TraceEvent::RotDraw {
                hit: byte(pos)? != 0,
                pos: get_varint(buf, pos)?,
            },
            15 => TraceEvent::ShardRoundStart {
                shard: get_varint(buf, pos)? as u32,
                round: get_varint(buf, pos)?,
                now: get_varint(buf, pos)?,
            },
            16 => TraceEvent::ShardRoundEnd {
                shard: get_varint(buf, pos)? as u32,
                round: get_varint(buf, pos)?,
                pending: get_varint(buf, pos)?,
                index: get_varint(buf, pos)?,
                stats: get_varint(buf, pos)?,
            },
            t => return Err(format!("unknown event tag {t}")),
        })
    }
}

/// A decoded (or freshly recorded) event log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Wraps an event list.
    pub fn new(events: Vec<TraceEvent>) -> Self {
        Trace { events }
    }

    /// The events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Mutable access (used by tests to inject perturbations).
    pub fn events_mut(&mut self) -> &mut Vec<TraceEvent> {
        &mut self.events
    }

    /// The first `Meta` value recorded under `key`.
    pub fn meta(&self, key: u32) -> Option<u64> {
        self.events.iter().find_map(|e| match e {
            TraceEvent::Meta { key: k, val } if *k == key => Some(*val),
            _ => None,
        })
    }

    /// All recorded submissions as `(tenant, at, len)`.
    pub fn submissions(&self) -> Vec<(u32, u64, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Submission { tenant, at, len } => Some((*tenant, *at, *len)),
                _ => None,
            })
            .collect()
    }

    /// Number of distinct rounds that produced events.
    pub fn rounds(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RoundStart { .. }))
            .count()
    }

    /// Encodes to the binary wire format (`CPTR` magic + version +
    /// varint-packed events).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.events.len() * 4);
        out.extend_from_slice(&TRACE_MAGIC);
        out.push(TRACE_VERSION);
        put_varint(&mut out, self.events.len() as u64);
        for e in &self.events {
            e.encode_into(&mut out);
        }
        out
    }

    /// Decodes the binary wire format.
    pub fn decode(buf: &[u8]) -> Result<Trace, String> {
        if buf.len() < 5 || buf[..4] != TRACE_MAGIC {
            return Err("not a CPTR trace".into());
        }
        if buf[4] != TRACE_VERSION {
            return Err(format!("unsupported trace version {}", buf[4]));
        }
        let mut pos = 5usize;
        let n = get_varint(buf, &mut pos)? as usize;
        if n > buf.len() {
            return Err("event count exceeds trace size".into());
        }
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(TraceEvent::decode_from(buf, &mut pos)?);
        }
        if pos != buf.len() {
            return Err(format!("{} trailing bytes after events", buf.len() - pos));
        }
        Ok(Trace { events })
    }

    /// Writes the encoded trace to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Loads and decodes a trace from `path`.
    pub fn load(path: &std::path::Path) -> std::io::Result<Trace> {
        let buf = std::fs::read(path)?;
        Trace::decode(&buf).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Offline divergence check: the position and surrounding rounds of
    /// the first event where two traces differ (`None` if identical).
    pub fn first_divergence(&self, other: &Trace) -> Option<Divergence> {
        let n = self.events.len().min(other.events.len());
        let mut round = 0u64;
        let mut shard = 0u32;
        for i in 0..n {
            match self.events[i] {
                TraceEvent::RoundStart { round: r, .. } => {
                    round = r;
                    shard = 0;
                }
                TraceEvent::ShardRoundStart {
                    shard: s, round: r, ..
                } => {
                    round = r;
                    shard = s;
                }
                _ => {}
            }
            if self.events[i] != other.events[i] {
                return Some(Divergence {
                    round,
                    shard,
                    pos: i,
                    expected: Some(self.events[i].clone()),
                    got: format!("{:?}", other.events[i]),
                });
            }
        }
        if self.events.len() != other.events.len() {
            return Some(Divergence {
                round,
                shard,
                pos: n,
                expected: self.events.get(n).cloned(),
                got: format!(
                    "stream ends after {} events (reference has {})",
                    other.events.len(),
                    self.events.len()
                ),
            });
        }
        None
    }
}

/// The first point where a replay left the recorded timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Round current when the mismatch was detected (0 = before the
    /// first recorded round). Shard-local on sharded runs.
    pub round: u64,
    /// Shard whose round was current when the mismatch was detected
    /// (always 0 on unsharded runs).
    pub shard: u32,
    /// Index into the recorded event stream.
    pub pos: usize,
    /// The recorded event at that position (`None` if the log was
    /// already exhausted).
    pub expected: Option<TraceEvent>,
    /// What the re-execution produced instead.
    pub got: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at shard {} round {} (event {}): expected {:?}, got {}",
            self.shard, self.round, self.pos, self.expected, self.got
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Record,
    Replay,
}

/// Default active-round interval between physical-memory digests. The
/// digest walks every allocated frame, so its cadence — not the event
/// log — bounds record overhead; 256 active rounds keeps full-workload
/// recording under the 10% bar while still bracketing a divergence to a
/// few hundred rounds of memory history (`fig_trace` measures both).
pub const DEFAULT_MEM_INTERVAL: u64 = 256;

/// The live recorder / replay checker handed to the service and the
/// fault plan through their configs. Interior mutability throughout —
/// the simulator is single-threaded and the tracer is shared by `Rc`.
pub struct Tracer {
    mode: Mode,
    /// Events this run produced (record and replay both re-record, so a
    /// faithful replay's `finish()` byte-equals the original trace).
    events: RefCell<Vec<TraceEvent>>,
    /// The reference stream (replay mode only).
    recorded: Vec<TraceEvent>,
    cursor: Cell<usize>,
    diverged: RefCell<Option<Divergence>>,
    round: Cell<u64>,
    /// Lazily emitted round header: set by `begin_round`, flushed by the
    /// first real event of the round, dropped by `end_round` if none came.
    header: Cell<Option<(u64, u64)>>,
    flushed: Cell<bool>,
    active_rounds: Cell<u64>,
    mem_interval: Cell<u64>,
    /// Sharded control plane (DESIGN.md §17): the shard whose round
    /// header an anonymous emit (fault-plan draw) attributes to — the
    /// last shard that emitted through `emit_on`. Always 0 unsharded.
    shard_cur: Cell<u32>,
    /// One lazy round header per shard, same protocol as `header`.
    shard_slots: RefCell<Vec<ShardSlot>>,
}

/// Per-shard lazy round header state (mirrors the unsharded
/// `header`/`flushed` pair).
#[derive(Clone, Copy, Default)]
struct ShardSlot {
    round: u64,
    header: Option<(u64, u64)>,
    flushed: bool,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("mode", &self.mode)
            .field("events", &self.events.borrow().len())
            .field("cursor", &self.cursor.get())
            .field("diverged", &self.diverged.borrow().is_some())
            .finish()
    }
}

impl Tracer {
    fn new(mode: Mode, recorded: Vec<TraceEvent>) -> Rc<Self> {
        Rc::new(Tracer {
            mode,
            events: RefCell::new(Vec::new()),
            recorded,
            cursor: Cell::new(0),
            diverged: RefCell::new(None),
            round: Cell::new(0),
            header: Cell::new(None),
            flushed: Cell::new(false),
            active_rounds: Cell::new(0),
            mem_interval: Cell::new(DEFAULT_MEM_INTERVAL),
            shard_cur: Cell::new(0),
            shard_slots: RefCell::new(Vec::new()),
        })
    }

    /// A tracer that records a fresh run.
    pub fn record() -> Rc<Self> {
        Self::new(Mode::Record, Vec::new())
    }

    /// A tracer that replays `trace`, feeding recorded draws back and
    /// checking every emitted event against the log in lockstep.
    pub fn replay(trace: Trace) -> Rc<Self> {
        Self::new(Mode::Replay, trace.events)
    }

    /// Whether this tracer is in replay mode.
    pub fn is_replay(&self) -> bool {
        self.mode == Mode::Replay
    }

    /// Sets the active-round interval between memory digests.
    pub fn set_mem_interval(&self, every: u64) {
        self.mem_interval.set(every.max(1));
    }

    /// Events emitted so far (bench instrumentation).
    pub fn events_len(&self) -> usize {
        self.events.borrow().len()
    }

    fn mark_divergence(&self, got: String) {
        let pos = self.cursor.get();
        *self.diverged.borrow_mut() = Some(Divergence {
            round: self.round.get(),
            shard: self.shard_cur.get(),
            pos,
            expected: self.recorded.get(pos).cloned(),
            got,
        });
    }

    /// Appends `ev` and, in replay mode, checks it against the recorded
    /// stream. After the first divergence checking stops (the replay
    /// keeps running on live draws so it still terminates cleanly).
    fn push(&self, ev: TraceEvent) {
        if self.mode == Mode::Replay && self.diverged.borrow().is_none() {
            let pos = self.cursor.get();
            match self.recorded.get(pos) {
                Some(rec) if *rec == ev => self.cursor.set(pos + 1),
                _ => self.mark_divergence(format!("{ev:?}")),
            }
        }
        self.events.borrow_mut().push(ev);
    }

    fn flush_header(&self) {
        if let Some((round, now)) = self.header.take() {
            self.flushed.set(true);
            self.push(TraceEvent::RoundStart { round, now });
        }
        // Sharded runs buffer one header per shard; an event is
        // attributed to the shard that last emitted through `emit_on`
        // (anonymous draws inherit it — every *active* shard round
        // flushes its own header through a service emit first, so an
        // inherited flush only ever surfaces an otherwise-idle round,
        // deterministically on record and replay alike).
        let cur = self.shard_cur.get() as usize;
        let hdr = {
            let mut slots = self.shard_slots.borrow_mut();
            match slots.get_mut(cur) {
                Some(slot) => slot.header.take().inspect(|_| slot.flushed = true),
                None => None,
            }
        };
        if let Some((round, now)) = hdr {
            self.push(TraceEvent::ShardRoundStart {
                shard: cur as u32,
                round,
                now,
            });
        }
    }

    /// Emits one event, flushing the pending round header first.
    pub fn emit(&self, ev: TraceEvent) {
        self.flush_header();
        self.push(ev);
    }

    /// Emits one event on behalf of `shard`, flushing that shard's
    /// pending round header first (sharded control plane, DESIGN.md §17).
    pub fn emit_on(&self, shard: u32, ev: TraceEvent) {
        self.shard_cur.set(shard);
        self.flush_header();
        self.push(ev);
    }

    /// Opens round `round` at virtual instant `now` (header stays
    /// buffered until the round emits something).
    pub fn begin_round(&self, round: u64, now: u64) {
        self.round.set(round);
        self.header.set(Some((round, now)));
        self.flushed.set(false);
    }

    /// Opens shard-local round `round` of `shard` at virtual instant
    /// `now`. Like `begin_round`, the header stays buffered until the
    /// shard emits something through `emit_on` (or an anonymous draw
    /// lands while this shard is current).
    pub fn begin_shard_round(&self, shard: u32, round: u64, now: u64) {
        self.round.set(round);
        self.shard_cur.set(shard);
        let mut slots = self.shard_slots.borrow_mut();
        if slots.len() <= shard as usize {
            slots.resize(shard as usize + 1, ShardSlot::default());
        }
        slots[shard as usize] = ShardSlot {
            round,
            header: Some((round, now)),
            flushed: false,
        };
    }

    /// Closes `shard`'s round. If it was active (emitted anything), a
    /// `ShardRoundEnd` carrying that shard's `(pending, index, stats)`
    /// hashes from the closure is appended — the closure is never called
    /// for idle rounds. Returns whether a memory digest checkpoint is
    /// due (counted across all shards' active rounds).
    pub fn end_shard_round(&self, shard: u32, hashes: impl FnOnce() -> (u64, u64, u64)) -> bool {
        let (flushed, round) = {
            let mut slots = self.shard_slots.borrow_mut();
            let slot = &mut slots[shard as usize];
            slot.header = None;
            (slot.flushed, slot.round)
        };
        if !flushed {
            return false;
        }
        let (pending, index, stats) = hashes();
        self.shard_cur.set(shard);
        self.push(TraceEvent::ShardRoundEnd {
            shard,
            round,
            pending,
            index,
            stats,
        });
        let n = self.active_rounds.get() + 1;
        self.active_rounds.set(n);
        n.is_multiple_of(self.mem_interval.get())
    }

    /// Closes the round. If it was active (emitted anything), a
    /// `RoundEnd` carrying the `(pending, index, stats)` hashes from the
    /// closure is appended; the closure is never called for idle rounds.
    /// Returns whether a memory digest checkpoint is due.
    pub fn end_round(&self, hashes: impl FnOnce() -> (u64, u64, u64)) -> bool {
        self.header.set(None);
        if !self.flushed.get() {
            return false;
        }
        let (pending, index, stats) = hashes();
        self.push(TraceEvent::RoundEnd {
            round: self.round.get(),
            pending,
            index,
            stats,
        });
        let n = self.active_rounds.get() + 1;
        self.active_rounds.set(n);
        n.is_multiple_of(self.mem_interval.get())
    }

    /// Appends a physical-memory digest for the current round.
    pub fn record_mem(&self, digest: u64) {
        self.emit(TraceEvent::MemDigest {
            round: self.round.get(),
            digest,
        });
    }

    /// Replay mode: consumes the next recorded DMA draw. `None` means
    /// the stream diverged (the caller falls back to live draws).
    pub fn take_dma(&self) -> Option<u8> {
        debug_assert!(self.is_replay());
        if self.diverged.borrow().is_some() {
            return None;
        }
        self.flush_header();
        if self.diverged.borrow().is_some() {
            return None;
        }
        let pos = self.cursor.get();
        match self.recorded.get(pos) {
            Some(&TraceEvent::DmaDraw { fault }) => {
                self.cursor.set(pos + 1);
                self.events.borrow_mut().push(TraceEvent::DmaDraw { fault });
                Some(fault)
            }
            _ => {
                self.mark_divergence("a DMA fault draw was requested".into());
                None
            }
        }
    }

    /// Replay mode: consumes the next recorded ATCache staleness draw.
    pub fn take_atc(&self) -> Option<bool> {
        debug_assert!(self.is_replay());
        if self.diverged.borrow().is_some() {
            return None;
        }
        self.flush_header();
        if self.diverged.borrow().is_some() {
            return None;
        }
        let pos = self.cursor.get();
        match self.recorded.get(pos) {
            Some(&TraceEvent::AtcDraw { stale }) => {
                self.cursor.set(pos + 1);
                self.events.borrow_mut().push(TraceEvent::AtcDraw { stale });
                Some(stale)
            }
            _ => {
                self.mark_divergence("an ATC staleness draw was requested".into());
                None
            }
        }
    }

    /// Replay mode: consumes the next recorded crash draw for the crash
    /// point with wire code `point`. `None` means the stream diverged
    /// (the caller falls back to live draws).
    pub fn take_crash(&self, point: u8) -> Option<bool> {
        debug_assert!(self.is_replay());
        if self.diverged.borrow().is_some() {
            return None;
        }
        self.flush_header();
        if self.diverged.borrow().is_some() {
            return None;
        }
        let pos = self.cursor.get();
        match self.recorded.get(pos) {
            Some(&TraceEvent::CrashDraw { point: p, fire }) if p == point => {
                self.cursor.set(pos + 1);
                self.events
                    .borrow_mut()
                    .push(TraceEvent::CrashDraw { point, fire });
                Some(fire)
            }
            _ => {
                self.mark_divergence(format!("a crash draw at point {point} was requested"));
                None
            }
        }
    }

    /// Replay mode: consumes the next recorded silent-corruption draw
    /// as `(kind, arg)`. `None` means the stream diverged (the caller
    /// falls back to live draws).
    pub fn take_corrupt(&self) -> Option<(u8, u64)> {
        debug_assert!(self.is_replay());
        if self.diverged.borrow().is_some() {
            return None;
        }
        self.flush_header();
        if self.diverged.borrow().is_some() {
            return None;
        }
        let pos = self.cursor.get();
        match self.recorded.get(pos) {
            Some(&TraceEvent::CorruptDraw { kind, arg }) => {
                self.cursor.set(pos + 1);
                self.events
                    .borrow_mut()
                    .push(TraceEvent::CorruptDraw { kind, arg });
                Some((kind, arg))
            }
            _ => {
                self.mark_divergence("a silent-corruption draw was requested".into());
                None
            }
        }
    }

    /// Replay mode: consumes the next recorded bit-rot draw as
    /// `(hit, pos)`.
    pub fn take_rot(&self) -> Option<(bool, u64)> {
        debug_assert!(self.is_replay());
        if self.diverged.borrow().is_some() {
            return None;
        }
        self.flush_header();
        if self.diverged.borrow().is_some() {
            return None;
        }
        let pos = self.cursor.get();
        match self.recorded.get(pos) {
            Some(&TraceEvent::RotDraw { hit, pos: p }) => {
                self.cursor.set(pos + 1);
                self.events
                    .borrow_mut()
                    .push(TraceEvent::RotDraw { hit, pos: p });
                Some((hit, p))
            }
            _ => {
                self.mark_divergence("a bit-rot draw was requested".into());
                None
            }
        }
    }

    /// Replay mode: consumes the next recorded race-time batch of
    /// exactly `n` instants.
    pub fn take_races(&self, n: usize) -> Option<Vec<u64>> {
        debug_assert!(self.is_replay());
        if self.diverged.borrow().is_some() {
            return None;
        }
        self.flush_header();
        if self.diverged.borrow().is_some() {
            return None;
        }
        let pos = self.cursor.get();
        match self.recorded.get(pos) {
            Some(TraceEvent::RaceTimes { times }) if times.len() == n => {
                let times = times.clone();
                self.cursor.set(pos + 1);
                self.events.borrow_mut().push(TraceEvent::RaceTimes {
                    times: times.clone(),
                });
                Some(times)
            }
            _ => {
                self.mark_divergence(format!("a batch of {n} race times was requested"));
                None
            }
        }
    }

    /// The first divergence, if the replay has left the recorded
    /// timeline.
    pub fn divergence(&self) -> Option<Divergence> {
        self.diverged.borrow().clone()
    }

    /// Closes the run and returns what it produced as a [`Trace`]. In
    /// replay mode, recorded events the re-execution never consumed are
    /// a divergence too (the run ended early) — latched here.
    pub fn finish(&self) -> Trace {
        if self.mode == Mode::Replay
            && self.diverged.borrow().is_none()
            && self.cursor.get() < self.recorded.len()
        {
            self.mark_divergence(format!(
                "run ended with {} recorded events unconsumed",
                self.recorded.len() - self.cursor.get()
            ));
        }
        Trace {
            events: self.events.borrow().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Meta { key: 1, val: 42 },
            TraceEvent::Submission {
                tenant: 3,
                at: 1_000_000,
                len: 65536,
            },
            TraceEvent::RaceTimes {
                times: vec![5, 1 << 40, 0],
            },
            TraceEvent::RoundStart {
                round: 1,
                now: 12345,
            },
            TraceEvent::Drained {
                copies: 4,
                syncs: 1,
            },
            TraceEvent::Admit {
                client: 2,
                len: 4096,
                admitted: true,
            },
            TraceEvent::SchedPick { client: 2 },
            TraceEvent::DmaDraw { fault: 2 },
            TraceEvent::AtcDraw { stale: false },
            TraceEvent::TaskDone { tid: 7, fault: 0 },
            TraceEvent::RoundEnd {
                round: 1,
                pending: u64::MAX,
                index: 0,
                stats: 0xdead_beef,
            },
            TraceEvent::MemDigest {
                round: 1,
                digest: FNV_OFFSET,
            },
            TraceEvent::CrashDraw {
                point: 3,
                fire: true,
            },
            TraceEvent::CorruptDraw {
                kind: 1,
                arg: 1 << 33,
            },
            TraceEvent::RotDraw {
                hit: true,
                pos: u64::MAX,
            },
            TraceEvent::ShardRoundStart {
                shard: 3,
                round: 17,
                now: 1 << 50,
            },
            TraceEvent::ShardRoundEnd {
                shard: 3,
                round: 17,
                pending: u64::MAX,
                index: 1,
                stats: 0xfeed_f00d,
            },
        ]
    }

    #[test]
    fn codec_roundtrips_every_event() {
        let t = Trace::new(sample_events());
        let bytes = t.encode();
        assert_eq!(&bytes[..4], b"CPTR");
        let back = Trace::decode(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Trace::decode(b"").is_err());
        assert!(Trace::decode(b"NOPE\x01\x00").is_err());
        assert!(Trace::decode(b"CPTR\x02\x00").is_err(), "bad version");
        let mut bytes = Trace::new(sample_events()).encode();
        bytes.push(0xff);
        assert!(Trace::decode(&bytes).is_err(), "trailing bytes");
        bytes.pop();
        bytes.pop();
        assert!(Trace::decode(&bytes).is_err(), "truncated");
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [0u64, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn lazy_round_headers_skip_idle_rounds() {
        let t = Tracer::record();
        t.begin_round(1, 100);
        assert!(!t.end_round(|| unreachable!("idle rounds are never hashed")));
        t.begin_round(2, 200);
        t.emit(TraceEvent::Drained {
            copies: 1,
            syncs: 0,
        });
        t.end_round(|| (1, 2, 3));
        let trace = t.finish();
        assert_eq!(
            trace.events(),
            &[
                TraceEvent::RoundStart { round: 2, now: 200 },
                TraceEvent::Drained {
                    copies: 1,
                    syncs: 0
                },
                TraceEvent::RoundEnd {
                    round: 2,
                    pending: 1,
                    index: 2,
                    stats: 3
                },
            ]
        );
    }

    #[test]
    fn replay_lockstep_accepts_faithful_stream() {
        let rec = Tracer::record();
        rec.begin_round(1, 10);
        rec.emit(TraceEvent::SchedPick { client: 1 });
        rec.end_round(|| (7, 8, 9));
        let trace = rec.finish();

        let rep = Tracer::replay(trace.clone());
        rep.begin_round(1, 10);
        rep.emit(TraceEvent::SchedPick { client: 1 });
        rep.end_round(|| (7, 8, 9));
        assert_eq!(rep.divergence(), None);
        assert_eq!(rep.finish().encode(), trace.encode());
    }

    #[test]
    fn replay_flags_first_mismatch_with_round() {
        let rec = Tracer::record();
        for r in 1..=3u64 {
            rec.begin_round(r, r * 10);
            rec.emit(TraceEvent::SchedPick { client: 1 });
            rec.end_round(|| (r, r, r));
        }
        let trace = rec.finish();

        let rep = Tracer::replay(trace);
        rep.begin_round(1, 10);
        rep.emit(TraceEvent::SchedPick { client: 1 });
        rep.end_round(|| (1, 1, 1));
        rep.begin_round(2, 20);
        rep.emit(TraceEvent::SchedPick { client: 9 }); // wrong
        rep.end_round(|| (2, 2, 2));
        let d = rep.divergence().expect("must diverge");
        assert_eq!(d.round, 2);
        assert_eq!(d.expected, Some(TraceEvent::SchedPick { client: 1 }), "{d}");
    }

    #[test]
    fn replay_feeds_back_draws_and_flags_unconsumed_tail() {
        let rec = Tracer::record();
        rec.begin_round(1, 1);
        rec.emit(TraceEvent::DmaDraw { fault: 3 });
        rec.emit(TraceEvent::AtcDraw { stale: true });
        rec.end_round(|| (0, 0, 0));
        let trace = rec.finish();

        let rep = Tracer::replay(trace.clone());
        rep.begin_round(1, 1);
        // Headers flush through draw consumption too: emit something
        // first the way the service would (drain/sched before draws).
        rep.emit(TraceEvent::DmaDraw { fault: 3 });
        assert_eq!(rep.take_atc(), Some(true));
        rep.end_round(|| (0, 0, 0));
        assert_eq!(rep.divergence(), None);

        // A replay that stops early leaves recorded events unconsumed.
        let rep2 = Tracer::replay(trace);
        rep2.begin_round(1, 1);
        rep2.emit(TraceEvent::DmaDraw { fault: 3 });
        let _ = rep2.finish();
        assert!(rep2.divergence().is_some(), "unconsumed tail must flag");
    }

    #[test]
    fn shard_round_headers_are_lazy_and_interleave() {
        let t = Tracer::record();
        // Shard 1 opens a round, shard 0 opens one too; only shard 1
        // emits — shard 0's header must never appear.
        t.begin_shard_round(0, 5, 100);
        t.begin_shard_round(1, 7, 100);
        t.emit_on(
            1,
            TraceEvent::Drained {
                copies: 2,
                syncs: 0,
            },
        );
        assert!(!t.end_shard_round(0, || unreachable!("idle shard rounds are never hashed")));
        t.end_shard_round(1, || (4, 5, 6));
        let trace = t.finish();
        assert_eq!(
            trace.events(),
            &[
                TraceEvent::ShardRoundStart {
                    shard: 1,
                    round: 7,
                    now: 100
                },
                TraceEvent::Drained {
                    copies: 2,
                    syncs: 0
                },
                TraceEvent::ShardRoundEnd {
                    shard: 1,
                    round: 7,
                    pending: 4,
                    index: 5,
                    stats: 6
                },
            ]
        );
    }

    #[test]
    fn shard_replay_divergence_names_shard_and_round() {
        let rec = Tracer::record();
        for (shard, round) in [(0u32, 1u64), (1, 1), (0, 2), (1, 2)] {
            rec.begin_shard_round(shard, round, round * 10);
            rec.emit_on(shard, TraceEvent::SchedPick { client: shard });
            rec.end_shard_round(shard, || (round, round, round));
        }
        let trace = rec.finish();

        let rep = Tracer::replay(trace);
        for (shard, round) in [(0u32, 1u64), (1, 1), (0, 2)] {
            rep.begin_shard_round(shard, round, round * 10);
            rep.emit_on(shard, TraceEvent::SchedPick { client: shard });
            rep.end_shard_round(shard, || (round, round, round));
        }
        // Shard 1's second round picks the wrong client.
        rep.begin_shard_round(1, 2, 20);
        rep.emit_on(1, TraceEvent::SchedPick { client: 9 });
        rep.end_shard_round(1, || (2, 2, 2));
        let d = rep.divergence().expect("must diverge");
        assert_eq!((d.shard, d.round), (1, 2), "{d}");
    }

    #[test]
    fn offline_first_divergence_localizes() {
        let a = Trace::new(sample_events());
        let mut b = a.clone();
        b.events_mut()[7] = TraceEvent::DmaDraw { fault: 0 };
        let d = a.first_divergence(&b).expect("must differ");
        assert_eq!(d.pos, 7);
        assert_eq!(d.round, 1);
        assert_eq!(a.first_divergence(&a), None);
    }
}
