//! Deterministic fault injection (chaos substrate).
//!
//! A [`FaultPlan`] is a seed-driven oracle that higher layers consult at
//! well-defined interposition points: the DMA engine before processing each
//! descriptor, the ATCache on each hit, and test harnesses when scheduling
//! `munmap`/exit races. Because the simulator is single-threaded and every
//! decision goes through one seeded PRNG, a fault schedule is fully
//! determined by `(seed, workload)` — the same seed replays the exact same
//! hardware failures at the exact same virtual instants, which turns any
//! chaos-found bug into a one-command regression (record-and-replay style).
//!
//! The plan only *decides*; the owning layer implements the failure
//! semantics (retry, quarantine, CPU fallback, re-walk). Injection counters
//! are kept here so tests can assert that a schedule actually exercised the
//! paths it claims to.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::rng::SimRng;
use crate::time::Nanos;
use crate::trace::{TraceEvent, Tracer};

/// A DMA descriptor-level failure decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaFault {
    /// Transient error: the descriptor fails after partial device time;
    /// a resubmission is expected to succeed.
    Transient,
    /// Hard channel death: the channel is permanently lost and every
    /// descriptor queued or later submitted to it must fail.
    HardFail,
    /// Completion timeout: the device stalls far beyond the modeled
    /// transfer time; the submitter should give up and cancel.
    Timeout,
}

/// A silent-corruption decision for one DMA transfer: the device moves
/// wrong bytes but still reports success — the failure class completion
/// status cannot see. The owning layer (the DMA engine's device loop)
/// applies the byte damage; the payload here is only a seeded position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SilentCorruption {
    /// One bit of the destination is flipped in flight. `pos` is a raw
    /// seeded draw; the engine reduces it modulo the transfer's bit
    /// length.
    BitFlip {
        /// Seeded bit-position draw (reduced modulo `len * 8`).
        pos: u64,
    },
    /// The payload lands at a wrong destination offset (a misdirected
    /// write): the engine rotates the written bytes by a non-zero shift
    /// derived from `shift`.
    Misdirect {
        /// Seeded offset-shift draw (reduced to `1..len`).
        shift: u64,
    },
}

/// A round sub-step at which the service consults the crash oracle.
///
/// The points bracket the interesting control-plane states: after tasks
/// moved off the submission rings but before any journal flush
/// (`MidDrain`), while pins are held but no byte has moved
/// (`MidDispatch`), after bytes landed but before handlers/credits
/// settle (`PreFinalize`), and during the journal append itself, where
/// the final record is torn mid-write (`MidJournalFlush`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After ring drain/sync, before admitted submissions are journaled.
    MidDrain,
    /// After translate+pin planning, before the copy batch dispatches.
    MidDispatch,
    /// After the batch executed, before the completion/finalize pass.
    PreFinalize,
    /// During the journal flush: the final staged record is torn.
    MidJournalFlush,
}

impl CrashPoint {
    /// Wire encoding of the crash point.
    pub fn code(self) -> u8 {
        match self {
            CrashPoint::MidDrain => 0,
            CrashPoint::MidDispatch => 1,
            CrashPoint::PreFinalize => 2,
            CrashPoint::MidJournalFlush => 3,
        }
    }

    /// Decodes a crash point; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(CrashPoint::MidDrain),
            1 => Some(CrashPoint::MidDispatch),
            2 => Some(CrashPoint::PreFinalize),
            3 => Some(CrashPoint::MidJournalFlush),
            _ => None,
        }
    }
}

/// Probabilities (per interposition event) of each injected fault class.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed of the decision PRNG.
    pub seed: u64,
    /// Per-descriptor probability of a transient DMA error.
    pub dma_transient_prob: f64,
    /// Per-descriptor probability of hard channel death.
    pub dma_hard_prob: f64,
    /// Per-descriptor probability of a completion timeout stall.
    pub dma_timeout_prob: f64,
    /// Per-hit probability that a cached translation is treated as stale
    /// (forcing a fresh page walk).
    pub atc_stale_prob: f64,
    /// Per-crash-point probability that the service dies there. Zero
    /// disables the crash oracle entirely — no PRNG draw is consumed, so
    /// crash-free schedules are byte-identical to pre-crash-layer runs.
    pub crash_prob: f64,
    /// Upper bound on injected crashes; past it every draw decides "no"
    /// (the draw is still consumed, keeping the schedule stable).
    pub max_crashes: u64,
    /// Per-descriptor probability of an in-flight DMA bit flip (silent:
    /// the transfer still reports success). Zero, together with
    /// `dma_misdirect_prob == 0`, disables the corruption oracle with no
    /// PRNG draw consumed.
    pub dma_flip_prob: f64,
    /// Per-descriptor probability of a misdirected DMA write (payload
    /// lands at a wrong destination offset; still reports success).
    pub dma_misdirect_prob: f64,
    /// Per-consultation probability of a pinned-page bit-rot event
    /// (scrubber substrate). Zero disables the rot oracle with no PRNG
    /// draw consumed.
    pub rot_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            dma_transient_prob: 0.0,
            dma_hard_prob: 0.0,
            dma_timeout_prob: 0.0,
            atc_stale_prob: 0.0,
            crash_prob: 0.0,
            max_crashes: 0,
            dma_flip_prob: 0.0,
            dma_misdirect_prob: 0.0,
            rot_prob: 0.0,
        }
    }
}

/// Counters of faults actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Transient DMA errors injected.
    pub dma_transient: u64,
    /// Hard channel deaths injected.
    pub dma_hard: u64,
    /// DMA completion timeouts injected.
    pub dma_timeout: u64,
    /// Stale ATCache hits injected.
    pub atc_stale: u64,
    /// Service crashes injected.
    pub crashes: u64,
    /// Silent DMA bit flips injected.
    pub dma_flips: u64,
    /// Misdirected DMA writes injected.
    pub dma_misdirects: u64,
    /// Pinned-page bit-rot events injected.
    pub rot_events: u64,
}

impl FaultLog {
    /// Total injected faults of any class.
    pub fn total(&self) -> u64 {
        self.dma_transient
            + self.dma_hard
            + self.dma_timeout
            + self.atc_stale
            + self.crashes
            + self.dma_flips
            + self.dma_misdirects
            + self.rot_events
    }
}

/// A seeded fault-injection oracle shared across layers.
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
    log: Cell<FaultLog>,
    /// Record/replay hook. In record mode every decision is appended to
    /// the trace; in replay mode decisions are *sourced from* the trace
    /// (the PRNG is not consulted) until the stream diverges, after
    /// which the oracle falls back to live draws so the run terminates.
    tracer: RefCell<Option<Rc<Tracer>>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("cfg", &self.cfg)
            .field("log", &self.log.get())
            .finish()
    }
}

impl FaultPlan {
    /// Creates a plan from a config (the PRNG is seeded from `cfg.seed`).
    pub fn new(cfg: FaultConfig) -> Rc<Self> {
        let rng = SimRng::new(cfg.seed);
        Rc::new(FaultPlan {
            cfg,
            rng,
            log: Cell::new(FaultLog::default()),
            tracer: RefCell::new(None),
        })
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Attaches a record/replay tracer to this oracle's decision stream.
    pub fn set_tracer(&self, tracer: &Rc<Tracer>) {
        *self.tracer.borrow_mut() = Some(Rc::clone(tracer));
    }

    fn tracer(&self) -> Option<Rc<Tracer>> {
        self.tracer.borrow().clone()
    }

    /// Decides the fate of one DMA descriptor. Classes are checked in
    /// severity order (hard death, then timeout, then transient); each
    /// check consumes exactly one PRNG draw so the decision stream is
    /// independent of which classes are enabled.
    pub fn decide_dma(&self) -> Option<DmaFault> {
        let tracer = self.tracer();
        if let Some(t) = tracer.as_deref() {
            if t.is_replay() {
                if let Some(code) = t.take_dma() {
                    let fault = Self::dma_from_code(code);
                    self.count_dma(fault);
                    return fault;
                }
                // Diverged: fall through to live draws (from the
                // never-advanced replay PRNG — still deterministic).
            }
        }
        let hard = self.rng.gen_bool(self.cfg.dma_hard_prob);
        let timeout = self.rng.gen_bool(self.cfg.dma_timeout_prob);
        let transient = self.rng.gen_bool(self.cfg.dma_transient_prob);
        let fault = if hard {
            Some(DmaFault::HardFail)
        } else if timeout {
            Some(DmaFault::Timeout)
        } else if transient {
            Some(DmaFault::Transient)
        } else {
            None
        };
        self.count_dma(fault);
        if let Some(t) = tracer.as_deref() {
            if !t.is_replay() {
                t.emit(TraceEvent::DmaDraw {
                    fault: Self::dma_code(fault),
                });
            }
        }
        fault
    }

    /// Wire encoding of a DMA decision: 0 none, 1 transient, 2 hard,
    /// 3 timeout.
    pub fn dma_code(fault: Option<DmaFault>) -> u8 {
        match fault {
            None => 0,
            Some(DmaFault::Transient) => 1,
            Some(DmaFault::HardFail) => 2,
            Some(DmaFault::Timeout) => 3,
        }
    }

    fn dma_from_code(code: u8) -> Option<DmaFault> {
        match code {
            1 => Some(DmaFault::Transient),
            2 => Some(DmaFault::HardFail),
            3 => Some(DmaFault::Timeout),
            _ => None,
        }
    }

    fn count_dma(&self, fault: Option<DmaFault>) {
        let mut log = self.log.get();
        match fault {
            Some(DmaFault::HardFail) => log.dma_hard += 1,
            Some(DmaFault::Timeout) => log.dma_timeout += 1,
            Some(DmaFault::Transient) => log.dma_transient += 1,
            None => {}
        }
        self.log.set(log);
    }

    /// Decides whether an ATCache hit should be treated as stale.
    pub fn decide_atc_stale(&self) -> bool {
        let tracer = self.tracer();
        let stale = match tracer.as_deref() {
            Some(t) if t.is_replay() => match t.take_atc() {
                Some(s) => s,
                None => self.rng.gen_bool(self.cfg.atc_stale_prob),
            },
            _ => {
                let s = self.rng.gen_bool(self.cfg.atc_stale_prob);
                if let Some(t) = tracer.as_deref() {
                    t.emit(TraceEvent::AtcDraw { stale: s });
                }
                s
            }
        };
        if stale {
            let mut log = self.log.get();
            log.atc_stale += 1;
            self.log.set(log);
        }
        stale
    }

    /// Decides whether the service crashes at `point`.
    ///
    /// With `crash_prob == 0.0` this consumes no draw at all, so enabling
    /// the crash-capable oracle does not perturb crash-free schedules.
    /// Otherwise exactly one draw is consumed per consultation; once
    /// `max_crashes` fired, the draw still happens but the answer is
    /// forced to "no", keeping the decision stream length stable.
    pub fn decide_crash(&self, point: CrashPoint) -> bool {
        if self.cfg.crash_prob <= 0.0 {
            return false;
        }
        let tracer = self.tracer();
        if let Some(t) = tracer.as_deref() {
            if t.is_replay() {
                if let Some(fire) = t.take_crash(point.code()) {
                    if fire {
                        self.count_crash();
                    }
                    return fire;
                }
                // Diverged: fall through to live draws.
            }
        }
        let draw = self.rng.gen_bool(self.cfg.crash_prob);
        let fire = draw && self.log.get().crashes < self.cfg.max_crashes;
        if let Some(t) = tracer.as_deref() {
            if !t.is_replay() {
                t.emit(TraceEvent::CrashDraw {
                    point: point.code(),
                    fire,
                });
            }
        }
        if fire {
            self.count_crash();
        }
        fire
    }

    fn count_crash(&self) {
        let mut log = self.log.get();
        log.crashes += 1;
        self.log.set(log);
    }

    /// Decides whether one DMA transfer is silently corrupted, and how.
    ///
    /// With both corruption probabilities zero this consumes no draw at
    /// all (same contract as the crash oracle), so corruption-free
    /// schedules are byte-identical to pre-integrity-layer runs.
    /// Otherwise exactly three draws are consumed per consultation
    /// (flip check, misdirect check, position payload) regardless of
    /// which classes are enabled or which fires; a flip outranks a
    /// misdirect when both fire.
    pub fn decide_corrupt(&self) -> Option<SilentCorruption> {
        if self.cfg.dma_flip_prob <= 0.0 && self.cfg.dma_misdirect_prob <= 0.0 {
            return None;
        }
        let tracer = self.tracer();
        if let Some(t) = tracer.as_deref() {
            if t.is_replay() {
                if let Some((kind, arg)) = t.take_corrupt() {
                    let c = Self::corrupt_from_code(kind, arg);
                    self.count_corrupt(c);
                    return c;
                }
                // Diverged: fall through to live draws.
            }
        }
        let flip = self.rng.gen_bool(self.cfg.dma_flip_prob);
        let misdirect = self.rng.gen_bool(self.cfg.dma_misdirect_prob);
        let payload = self.rng.next_u64();
        let c = if flip {
            Some(SilentCorruption::BitFlip { pos: payload })
        } else if misdirect {
            Some(SilentCorruption::Misdirect { shift: payload })
        } else {
            None
        };
        self.count_corrupt(c);
        if let Some(t) = tracer.as_deref() {
            if !t.is_replay() {
                let (kind, arg) = Self::corrupt_code(c);
                t.emit(TraceEvent::CorruptDraw { kind, arg });
            }
        }
        c
    }

    /// Wire encoding of a corruption decision: kind 0 none, 1 bit flip,
    /// 2 misdirect; `arg` carries the position/shift payload.
    pub fn corrupt_code(c: Option<SilentCorruption>) -> (u8, u64) {
        match c {
            None => (0, 0),
            Some(SilentCorruption::BitFlip { pos }) => (1, pos),
            Some(SilentCorruption::Misdirect { shift }) => (2, shift),
        }
    }

    fn corrupt_from_code(kind: u8, arg: u64) -> Option<SilentCorruption> {
        match kind {
            1 => Some(SilentCorruption::BitFlip { pos: arg }),
            2 => Some(SilentCorruption::Misdirect { shift: arg }),
            _ => None,
        }
    }

    fn count_corrupt(&self, c: Option<SilentCorruption>) {
        let mut log = self.log.get();
        match c {
            Some(SilentCorruption::BitFlip { .. }) => log.dma_flips += 1,
            Some(SilentCorruption::Misdirect { .. }) => log.dma_misdirects += 1,
            None => {}
        }
        self.log.set(log);
    }

    /// Decides whether a pinned-page bit-rot event fires, returning the
    /// seeded bit position it lands on (the owning layer reduces it to a
    /// byte inside the scrub-registered footprint).
    ///
    /// With `rot_prob == 0.0` this consumes no draw at all; otherwise
    /// exactly two draws (hit check, position payload) per consultation,
    /// whether or not the event fires.
    pub fn decide_rot(&self) -> Option<u64> {
        if self.cfg.rot_prob <= 0.0 {
            return None;
        }
        let tracer = self.tracer();
        if let Some(t) = tracer.as_deref() {
            if t.is_replay() {
                if let Some((hit, pos)) = t.take_rot() {
                    if hit {
                        self.count_rot();
                        return Some(pos);
                    }
                    return None;
                }
                // Diverged: fall through to live draws.
            }
        }
        let hit = self.rng.gen_bool(self.cfg.rot_prob);
        let pos = self.rng.next_u64();
        if let Some(t) = tracer.as_deref() {
            if !t.is_replay() {
                t.emit(TraceEvent::RotDraw { hit, pos });
            }
        }
        if hit {
            self.count_rot();
            Some(pos)
        } else {
            None
        }
    }

    fn count_rot(&self) {
        let mut log = self.log.get();
        log.rot_events += 1;
        self.log.set(log);
    }

    /// Draws `n` virtual instants uniformly in `[0, horizon)` for delayed
    /// race events (`munmap`/exit against in-flight copies), sorted
    /// ascending. Harnesses spawn timer tasks at these instants.
    pub fn race_times(&self, n: usize, horizon: Nanos) -> Vec<Nanos> {
        assert!(horizon > Nanos::ZERO);
        let tracer = self.tracer();
        if let Some(t) = tracer.as_deref() {
            if t.is_replay() {
                if let Some(times) = t.take_races(n) {
                    return times.into_iter().map(Nanos).collect();
                }
            }
        }
        let mut out: Vec<Nanos> = (0..n)
            .map(|_| Nanos(self.rng.gen_range(horizon.as_nanos())))
            .collect();
        out.sort();
        if let Some(t) = tracer.as_deref() {
            if !t.is_replay() {
                t.emit(TraceEvent::RaceTimes {
                    times: out.iter().map(|t| t.as_nanos()).collect(),
                });
            }
        }
        out
    }

    /// Snapshot of the injected-fault counters.
    pub fn log(&self) -> FaultLog {
        self.log.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic(seed: u64) -> Rc<FaultPlan> {
        FaultPlan::new(FaultConfig {
            seed,
            dma_transient_prob: 0.3,
            dma_hard_prob: 0.1,
            dma_timeout_prob: 0.1,
            atc_stale_prob: 0.2,
            ..Default::default()
        })
    }

    #[test]
    fn same_seed_same_decision_stream() {
        let a = chaotic(77);
        let b = chaotic(77);
        for _ in 0..500 {
            assert_eq!(a.decide_dma(), b.decide_dma());
            assert_eq!(a.decide_atc_stale(), b.decide_atc_stale());
        }
        assert_eq!(a.log(), b.log());
        assert!(a.log().total() > 0, "a chaotic plan must inject something");
    }

    #[test]
    fn zero_probabilities_inject_nothing() {
        let p = FaultPlan::new(FaultConfig::default());
        for _ in 0..100 {
            assert_eq!(p.decide_dma(), None);
            assert!(!p.decide_atc_stale());
        }
        assert_eq!(p.log(), FaultLog::default());
    }

    #[test]
    fn race_times_sorted_within_horizon_and_reproducible() {
        let a = chaotic(5).race_times(8, Nanos::from_millis(1));
        let b = chaotic(5).race_times(8, Nanos::from_millis(1));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| t < Nanos::from_millis(1)));
    }

    #[test]
    fn recorded_decision_stream_replays_verbatim() {
        let rec = Tracer::record();
        let a = chaotic(31);
        a.set_tracer(&rec);
        let mut decisions = Vec::new();
        for _ in 0..200 {
            decisions.push((a.decide_dma(), a.decide_atc_stale()));
        }
        let races = a.race_times(4, Nanos::from_millis(1));
        let trace = rec.finish();

        // Replay against a plan with a DIFFERENT seed: every decision
        // must come from the log, not the PRNG.
        let rep = Tracer::replay(trace);
        let b = chaotic(9999);
        b.set_tracer(&rep);
        for &(dma, atc) in &decisions {
            assert_eq!(b.decide_dma(), dma);
            assert_eq!(b.decide_atc_stale(), atc);
        }
        assert_eq!(b.race_times(4, Nanos::from_millis(1)), races);
        assert_eq!(rep.divergence(), None);
        assert_eq!(a.log(), b.log(), "replay reproduces injection counters");
    }

    #[test]
    fn decision_stream_isolated_per_class_count() {
        // Disabling one class must not perturb which events the others hit:
        // each decide_dma consumes a fixed number of draws.
        let all = chaotic(9);
        let no_timeout = FaultPlan::new(FaultConfig {
            seed: 9,
            dma_timeout_prob: 0.0,
            ..chaotic(9).config().clone()
        });
        let mut hard_a = 0;
        let mut hard_b = 0;
        for _ in 0..400 {
            if all.decide_dma() == Some(DmaFault::HardFail) {
                hard_a += 1;
            }
            if no_timeout.decide_dma() == Some(DmaFault::HardFail) {
                hard_b += 1;
            }
        }
        assert_eq!(hard_a, hard_b, "hard-fail schedule independent of timeouts");
    }

    #[test]
    fn disabled_crash_oracle_consumes_no_draws() {
        // The crash oracle must be free when off: interleaving
        // decide_crash calls with crash_prob == 0 must not shift the DMA
        // decision stream.
        let plain = chaotic(13);
        let probed = chaotic(13);
        for _ in 0..300 {
            assert!(!probed.decide_crash(CrashPoint::MidDrain));
            assert_eq!(plain.decide_dma(), probed.decide_dma());
        }
        assert_eq!(probed.log().crashes, 0);
    }

    #[test]
    fn crash_schedule_is_seeded_and_bounded() {
        let mk = || {
            FaultPlan::new(FaultConfig {
                seed: 41,
                crash_prob: 0.2,
                max_crashes: 3,
                ..Default::default()
            })
        };
        let a = mk();
        let b = mk();
        let mut fired = Vec::new();
        for i in 0..200 {
            let fa = a.decide_crash(CrashPoint::PreFinalize);
            assert_eq!(fa, b.decide_crash(CrashPoint::PreFinalize));
            if fa {
                fired.push(i);
            }
        }
        assert_eq!(a.log().crashes, 3, "max_crashes bounds injection");
        assert_eq!(fired.len(), 3);
        // Draws past the bound are still consumed: the DMA stream after
        // the crash budget is spent matches a plan that kept drawing.
        assert_eq!(a.decide_dma(), b.decide_dma());
    }

    #[test]
    fn disabled_corruption_oracle_consumes_no_draws() {
        // Corruption and rot oracles must be free when off: probing them
        // with zero probabilities must not shift the DMA decision stream.
        let plain = chaotic(21);
        let probed = chaotic(21);
        for _ in 0..300 {
            assert_eq!(probed.decide_corrupt(), None);
            assert_eq!(probed.decide_rot(), None);
            assert_eq!(plain.decide_dma(), probed.decide_dma());
        }
        let log = probed.log();
        assert_eq!(log.dma_flips + log.dma_misdirects + log.rot_events, 0);
    }

    #[test]
    fn corruption_schedule_is_seeded_and_class_isolated() {
        let mk = |misdirect: f64| {
            FaultPlan::new(FaultConfig {
                seed: 63,
                dma_flip_prob: 0.15,
                dma_misdirect_prob: misdirect,
                rot_prob: 0.1,
                ..Default::default()
            })
        };
        let a = mk(0.15);
        let b = mk(0.15);
        let no_misdirect = mk(0.0);
        let mut flips_a = 0;
        let mut flips_c = 0;
        for _ in 0..400 {
            let ca = a.decide_corrupt();
            assert_eq!(ca, b.decide_corrupt());
            assert_eq!(a.decide_rot(), b.decide_rot());
            if matches!(ca, Some(SilentCorruption::BitFlip { .. })) {
                flips_a += 1;
            }
            if matches!(
                no_misdirect.decide_corrupt(),
                Some(SilentCorruption::BitFlip { .. })
            ) {
                flips_c += 1;
            }
            let _ = no_misdirect.decide_rot();
        }
        assert_eq!(flips_a, flips_c, "flip schedule independent of misdirects");
        assert!(a.log().dma_flips > 0, "a chaotic plan must inject flips");
        assert!(a.log().rot_events > 0, "rot oracle must fire at 10%");
    }

    #[test]
    fn recorded_corruption_draws_replay_verbatim() {
        let rec = Tracer::record();
        let a = FaultPlan::new(FaultConfig {
            seed: 11,
            dma_flip_prob: 0.2,
            dma_misdirect_prob: 0.2,
            rot_prob: 0.15,
            ..Default::default()
        });
        a.set_tracer(&rec);
        let mut decisions = Vec::new();
        for _ in 0..150 {
            decisions.push((a.decide_corrupt(), a.decide_rot()));
        }
        let trace = rec.finish();

        let rep = Tracer::replay(trace);
        let b = FaultPlan::new(FaultConfig {
            seed: 0xBEEF, // different seed: every decision must come from the log
            dma_flip_prob: 0.2,
            dma_misdirect_prob: 0.2,
            rot_prob: 0.15,
            ..Default::default()
        });
        b.set_tracer(&rep);
        for &(c, r) in &decisions {
            assert_eq!(b.decide_corrupt(), c);
            assert_eq!(b.decide_rot(), r);
        }
        assert_eq!(rep.divergence(), None);
        assert_eq!(a.log(), b.log(), "replay reproduces injection counters");
    }

    #[test]
    fn recorded_crash_draws_replay_verbatim() {
        let rec = Tracer::record();
        let a = FaultPlan::new(FaultConfig {
            seed: 7,
            crash_prob: 0.15,
            max_crashes: 2,
            ..Default::default()
        });
        a.set_tracer(&rec);
        let points = [
            CrashPoint::MidDrain,
            CrashPoint::MidDispatch,
            CrashPoint::PreFinalize,
            CrashPoint::MidJournalFlush,
        ];
        let mut decisions = Vec::new();
        for i in 0..100usize {
            decisions.push(a.decide_crash(points[i % points.len()]));
        }
        let trace = rec.finish();

        let rep = Tracer::replay(trace);
        let b = FaultPlan::new(FaultConfig {
            seed: 0xDEAD, // different seed: every decision must come from the log
            crash_prob: 0.15,
            max_crashes: 2,
            ..Default::default()
        });
        b.set_tracer(&rep);
        for (i, &fire) in decisions.iter().enumerate() {
            assert_eq!(b.decide_crash(points[i % points.len()]), fire);
        }
        assert_eq!(rep.divergence(), None);
        assert_eq!(a.log().crashes, b.log().crashes);
    }
}
