//! Deterministic fault injection (chaos substrate).
//!
//! A [`FaultPlan`] is a seed-driven oracle that higher layers consult at
//! well-defined interposition points: the DMA engine before processing each
//! descriptor, the ATCache on each hit, and test harnesses when scheduling
//! `munmap`/exit races. Because the simulator is single-threaded and every
//! decision goes through one seeded PRNG, a fault schedule is fully
//! determined by `(seed, workload)` — the same seed replays the exact same
//! hardware failures at the exact same virtual instants, which turns any
//! chaos-found bug into a one-command regression (record-and-replay style).
//!
//! The plan only *decides*; the owning layer implements the failure
//! semantics (retry, quarantine, CPU fallback, re-walk). Injection counters
//! are kept here so tests can assert that a schedule actually exercised the
//! paths it claims to.

use std::cell::Cell;
use std::rc::Rc;

use crate::rng::SimRng;
use crate::time::Nanos;

/// A DMA descriptor-level failure decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaFault {
    /// Transient error: the descriptor fails after partial device time;
    /// a resubmission is expected to succeed.
    Transient,
    /// Hard channel death: the channel is permanently lost and every
    /// descriptor queued or later submitted to it must fail.
    HardFail,
    /// Completion timeout: the device stalls far beyond the modeled
    /// transfer time; the submitter should give up and cancel.
    Timeout,
}

/// Probabilities (per interposition event) of each injected fault class.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed of the decision PRNG.
    pub seed: u64,
    /// Per-descriptor probability of a transient DMA error.
    pub dma_transient_prob: f64,
    /// Per-descriptor probability of hard channel death.
    pub dma_hard_prob: f64,
    /// Per-descriptor probability of a completion timeout stall.
    pub dma_timeout_prob: f64,
    /// Per-hit probability that a cached translation is treated as stale
    /// (forcing a fresh page walk).
    pub atc_stale_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            dma_transient_prob: 0.0,
            dma_hard_prob: 0.0,
            dma_timeout_prob: 0.0,
            atc_stale_prob: 0.0,
        }
    }
}

/// Counters of faults actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Transient DMA errors injected.
    pub dma_transient: u64,
    /// Hard channel deaths injected.
    pub dma_hard: u64,
    /// DMA completion timeouts injected.
    pub dma_timeout: u64,
    /// Stale ATCache hits injected.
    pub atc_stale: u64,
}

impl FaultLog {
    /// Total injected faults of any class.
    pub fn total(&self) -> u64 {
        self.dma_transient + self.dma_hard + self.dma_timeout + self.atc_stale
    }
}

/// A seeded fault-injection oracle shared across layers.
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
    log: Cell<FaultLog>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("cfg", &self.cfg)
            .field("log", &self.log.get())
            .finish()
    }
}

impl FaultPlan {
    /// Creates a plan from a config (the PRNG is seeded from `cfg.seed`).
    pub fn new(cfg: FaultConfig) -> Rc<Self> {
        let rng = SimRng::new(cfg.seed);
        Rc::new(FaultPlan {
            cfg,
            rng,
            log: Cell::new(FaultLog::default()),
        })
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decides the fate of one DMA descriptor. Classes are checked in
    /// severity order (hard death, then timeout, then transient); each
    /// check consumes exactly one PRNG draw so the decision stream is
    /// independent of which classes are enabled.
    pub fn decide_dma(&self) -> Option<DmaFault> {
        let hard = self.rng.gen_bool(self.cfg.dma_hard_prob);
        let timeout = self.rng.gen_bool(self.cfg.dma_timeout_prob);
        let transient = self.rng.gen_bool(self.cfg.dma_transient_prob);
        let mut log = self.log.get();
        let fault = if hard {
            log.dma_hard += 1;
            Some(DmaFault::HardFail)
        } else if timeout {
            log.dma_timeout += 1;
            Some(DmaFault::Timeout)
        } else if transient {
            log.dma_transient += 1;
            Some(DmaFault::Transient)
        } else {
            None
        };
        self.log.set(log);
        fault
    }

    /// Decides whether an ATCache hit should be treated as stale.
    pub fn decide_atc_stale(&self) -> bool {
        let stale = self.rng.gen_bool(self.cfg.atc_stale_prob);
        if stale {
            let mut log = self.log.get();
            log.atc_stale += 1;
            self.log.set(log);
        }
        stale
    }

    /// Draws `n` virtual instants uniformly in `[0, horizon)` for delayed
    /// race events (`munmap`/exit against in-flight copies), sorted
    /// ascending. Harnesses spawn timer tasks at these instants.
    pub fn race_times(&self, n: usize, horizon: Nanos) -> Vec<Nanos> {
        assert!(horizon > Nanos::ZERO);
        let mut out: Vec<Nanos> = (0..n)
            .map(|_| Nanos(self.rng.gen_range(horizon.as_nanos())))
            .collect();
        out.sort();
        out
    }

    /// Snapshot of the injected-fault counters.
    pub fn log(&self) -> FaultLog {
        self.log.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic(seed: u64) -> Rc<FaultPlan> {
        FaultPlan::new(FaultConfig {
            seed,
            dma_transient_prob: 0.3,
            dma_hard_prob: 0.1,
            dma_timeout_prob: 0.1,
            atc_stale_prob: 0.2,
        })
    }

    #[test]
    fn same_seed_same_decision_stream() {
        let a = chaotic(77);
        let b = chaotic(77);
        for _ in 0..500 {
            assert_eq!(a.decide_dma(), b.decide_dma());
            assert_eq!(a.decide_atc_stale(), b.decide_atc_stale());
        }
        assert_eq!(a.log(), b.log());
        assert!(a.log().total() > 0, "a chaotic plan must inject something");
    }

    #[test]
    fn zero_probabilities_inject_nothing() {
        let p = FaultPlan::new(FaultConfig::default());
        for _ in 0..100 {
            assert_eq!(p.decide_dma(), None);
            assert!(!p.decide_atc_stale());
        }
        assert_eq!(p.log(), FaultLog::default());
    }

    #[test]
    fn race_times_sorted_within_horizon_and_reproducible() {
        let a = chaotic(5).race_times(8, Nanos::from_millis(1));
        let b = chaotic(5).race_times(8, Nanos::from_millis(1));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| t < Nanos::from_millis(1)));
    }

    #[test]
    fn decision_stream_isolated_per_class_count() {
        // Disabling one class must not perturb which events the others hit:
        // each decide_dma consumes a fixed number of draws.
        let all = chaotic(9);
        let no_timeout = FaultPlan::new(FaultConfig {
            seed: 9,
            dma_timeout_prob: 0.0,
            ..chaotic(9).config().clone()
        });
        let mut hard_a = 0;
        let mut hard_b = 0;
        for _ in 0..400 {
            if all.decide_dma() == Some(DmaFault::HardFail) {
                hard_a += 1;
            }
            if no_timeout.decide_dma() == Some(DmaFault::HardFail) {
                hard_b += 1;
            }
        }
        assert_eq!(hard_a, hard_b, "hard-fail schedule independent of timeouts");
    }
}
