//! Cache-residency proxy model (§6.3.5 of the paper).
//!
//! The paper observes that large copies executed *inline* evict the
//! application's hot data from the top-level cache, inflating the CPI of
//! copy-irrelevant code by 4–16%; offloading the copy to Copier's core
//! avoids the eviction. Real hardware counters are unavailable here, so we
//! model the effect with a single scalar per core: the *residency* of the
//! application's hot working set in [0, 1].
//!
//! * An inline copy of `b` bytes decays residency exponentially with scale
//!   [`CacheConfig::pollution_bytes`] (roughly the L2 size — a copy that
//!   streams an L2's worth of data evicts ~63% of hot lines).
//! * Copy-irrelevant compute is inflated by `1 + miss_tax × (1 − residency)`
//!   and restores residency toward 1 with time constant
//!   [`CacheConfig::recovery`].
//!
//! The model is deliberately first-order; EXPERIMENTS.md discusses how it
//! maps onto the paper's measured 4–16% CPI reduction.

use std::cell::Cell;

use crate::time::Nanos;

/// Tuning knobs for the cache-residency model.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Bytes of streamed copy that reduce residency by the factor `1/e`.
    pub pollution_bytes: f64,
    /// Maximum fractional CPI inflation when residency is 0.
    pub miss_tax: f64,
    /// Compute time that restores residency by the factor `1 − 1/e`.
    pub recovery: Nanos,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            // 256 KiB L2 per core on the paper's Xeon E5-2650 v4.
            pollution_bytes: 256.0 * 1024.0,
            miss_tax: 0.20,
            recovery: Nanos::from_micros(30),
        }
    }
}

/// Per-core cache state.
pub struct CacheModel {
    cfg: Cell<CacheConfig>,
    residency: Cell<f64>,
    enabled: Cell<bool>,
}

impl CacheModel {
    /// Creates a model with full residency; `enabled` gates all effects.
    pub fn default_enabled(enabled: bool) -> Self {
        CacheModel {
            cfg: Cell::new(CacheConfig::default()),
            residency: Cell::new(1.0),
            enabled: Cell::new(enabled),
        }
    }

    /// Turns the model on or off (off = no inflation, no decay).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.set(on);
        if !on {
            self.residency.set(1.0);
        }
    }

    /// Whether the model currently applies.
    pub fn enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Replaces the configuration.
    pub fn set_config(&self, cfg: CacheConfig) {
        self.cfg.set(cfg);
    }

    /// Current hot-data residency in [0, 1].
    pub fn residency(&self) -> f64 {
        self.residency.get()
    }

    /// Records an inline copy of `bytes` through this core's cache.
    pub fn note_inline_copy(&self, bytes: usize) {
        if !self.enabled.get() {
            return;
        }
        let cfg = self.cfg.get();
        let decay = (-(bytes as f64) / cfg.pollution_bytes).exp();
        self.residency.set(self.residency.get() * decay);
    }

    /// Returns the inflated cost of `dur` of compute and restores residency.
    pub fn compute_cost(&self, dur: Nanos) -> Nanos {
        if !self.enabled.get() {
            return dur;
        }
        let cfg = self.cfg.get();
        let r = self.residency.get();
        let inflated = dur.mul_f64(1.0 + cfg.miss_tax * (1.0 - r));
        // Recover toward full residency.
        let alpha = (-(dur.as_nanos() as f64) / cfg.recovery.as_nanos() as f64).exp();
        self.residency.set(1.0 - (1.0 - r) * alpha);
        inflated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_identity() {
        let m = CacheModel::default_enabled(false);
        m.note_inline_copy(1 << 20);
        assert_eq!(m.residency(), 1.0);
        assert_eq!(m.compute_cost(Nanos(1000)), Nanos(1000));
    }

    #[test]
    fn inline_copy_decays_residency() {
        let m = CacheModel::default_enabled(true);
        m.note_inline_copy(256 * 1024);
        assert!((m.residency() - (-1.0f64).exp()).abs() < 1e-9);
        m.note_inline_copy(256 * 1024);
        assert!((m.residency() - (-2.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn compute_inflates_then_recovers() {
        let m = CacheModel::default_enabled(true);
        m.note_inline_copy(10 << 20); // residency ~ 0
        let c = m.compute_cost(Nanos(10_000));
        assert!(c > Nanos(10_000));
        assert!(c <= Nanos(12_001)); // bounded by miss_tax = 20%
                                     // Long compute restores residency.
        for _ in 0..100 {
            m.compute_cost(Nanos::from_micros(30));
        }
        assert!(m.residency() > 0.99);
        // Near-full residency: negligible inflation.
        let c2 = m.compute_cost(Nanos(10_000));
        assert!(c2 < Nanos(10_100));
    }
}
