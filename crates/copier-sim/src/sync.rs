//! Virtual-time synchronization primitives.
//!
//! These mirror the small subset of async primitives the rest of the stack
//! needs: a [`Notify`] cell (with stored permits, like tokio's), an unbounded
//! channel [`Chan`], and timeout-aware waiting. All of them are
//! single-host-thread types (`Rc`-based) — the simulation executor is
//! single-threaded by design.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::exec::SimHandle;
use crate::time::Nanos;

#[derive(Default)]
struct Waiter {
    fired: bool,
    cancelled: bool,
    waker: Option<Waker>,
}

struct NotifyInner {
    permits: usize,
    waiters: VecDeque<Rc<RefCell<Waiter>>>,
}

/// An async notification cell.
///
/// `notify_one` wakes one pending waiter, or stores a permit consumed by the
/// next `notified().await` — so a notification sent just before a task starts
/// waiting is not lost.
pub struct Notify {
    inner: RefCell<NotifyInner>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// Creates a notify cell with no stored permits.
    pub fn new() -> Self {
        Notify {
            inner: RefCell::new(NotifyInner {
                permits: 0,
                waiters: VecDeque::new(),
            }),
        }
    }

    /// Wakes one waiter, or stores a single permit if none is waiting.
    pub fn notify_one(&self) {
        let mut inner = self.inner.borrow_mut();
        while let Some(w) = inner.waiters.pop_front() {
            let mut w = w.borrow_mut();
            if w.cancelled {
                continue;
            }
            w.fired = true;
            if let Some(waker) = w.waker.take() {
                waker.wake();
            }
            return;
        }
        inner.permits += 1;
    }

    /// Wakes all current waiters (does not store permits).
    pub fn notify_all(&self) {
        let mut inner = self.inner.borrow_mut();
        while let Some(w) = inner.waiters.pop_front() {
            let mut w = w.borrow_mut();
            if w.cancelled {
                continue;
            }
            w.fired = true;
            if let Some(waker) = w.waker.take() {
                waker.wake();
            }
        }
    }

    /// Waits for a notification.
    pub fn notified(&self) -> Notified<'_> {
        Notified {
            notify: self,
            waiter: None,
        }
    }

    /// Waits for a notification with a virtual-time timeout.
    ///
    /// Resolves to `true` if notified, `false` on timeout.
    pub fn wait_timeout<'a>(&'a self, h: &SimHandle, dur: Nanos) -> WaitTimeout<'a> {
        WaitTimeout {
            notify: self,
            h: h.clone(),
            deadline: Nanos(h.now().0.saturating_add(dur.0)),
            waiter: None,
            timer_registered: false,
        }
    }

    fn try_take_permit(&self) -> bool {
        let mut inner = self.inner.borrow_mut();
        if inner.permits > 0 {
            inner.permits -= 1;
            true
        } else {
            false
        }
    }

    fn register(&self, waker: Waker) -> Rc<RefCell<Waiter>> {
        let w = Rc::new(RefCell::new(Waiter {
            fired: false,
            cancelled: false,
            waker: Some(waker),
        }));
        self.inner.borrow_mut().waiters.push_back(Rc::clone(&w));
        w
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified<'a> {
    notify: &'a Notify,
    waiter: Option<Rc<RefCell<Waiter>>>,
}

impl Future for Notified<'_> {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if let Some(w) = &self.waiter {
            let mut w = w.borrow_mut();
            if w.fired {
                return Poll::Ready(());
            }
            w.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        if self.notify.try_take_permit() {
            return Poll::Ready(());
        }
        self.waiter = Some(self.notify.register(cx.waker().clone()));
        Poll::Pending
    }
}

impl Drop for Notified<'_> {
    fn drop(&mut self) {
        if let Some(w) = &self.waiter {
            let mut w = w.borrow_mut();
            if w.fired {
                // The permit was consumed by a waiter that never observed
                // it; hand it back so no notification is lost.
                drop(w);
                self.notify.inner.borrow_mut().permits += 1;
            } else {
                w.cancelled = true;
            }
        }
    }
}

/// Future returned by [`Notify::wait_timeout`].
pub struct WaitTimeout<'a> {
    notify: &'a Notify,
    h: SimHandle,
    deadline: Nanos,
    waiter: Option<Rc<RefCell<Waiter>>>,
    timer_registered: bool,
}

impl Future for WaitTimeout<'_> {
    type Output = bool;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        if let Some(w) = &self.waiter {
            if w.borrow().fired {
                return Poll::Ready(true);
            }
        } else {
            if self.notify.try_take_permit() {
                return Poll::Ready(true);
            }
            self.waiter = Some(self.notify.register(cx.waker().clone()));
        }
        if self.h.now() >= self.deadline {
            if let Some(w) = &self.waiter {
                w.borrow_mut().cancelled = true;
            }
            return Poll::Ready(false);
        }
        if let Some(w) = &self.waiter {
            w.borrow_mut().waker = Some(cx.waker().clone());
        }
        if !self.timer_registered {
            self.timer_registered = true;
            self.h.register_timer(self.deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

impl Drop for WaitTimeout<'_> {
    fn drop(&mut self) {
        if let Some(w) = &self.waiter {
            let mut w = w.borrow_mut();
            if w.fired {
                drop(w);
                self.notify.inner.borrow_mut().permits += 1;
            } else {
                w.cancelled = true;
            }
        }
    }
}

struct ChanInner<T> {
    queue: VecDeque<T>,
    notify: Notify,
    closed: bool,
}

/// An unbounded multi-producer channel in virtual time.
///
/// Cloning shares the underlying queue; any clone may send or receive.
pub struct Chan<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

impl<T> Clone for Chan<T> {
    fn clone(&self) -> Self {
        Chan {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Default for Chan<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Chan<T> {
    /// Creates an empty open channel.
    pub fn new() -> Self {
        Chan {
            inner: Rc::new(RefCell::new(ChanInner {
                queue: VecDeque::new(),
                notify: Notify::new(),
                closed: false,
            })),
        }
    }

    /// Enqueues a value, waking one receiver.
    pub fn send(&self, v: T) {
        let mut inner = self.inner.borrow_mut();
        inner.queue.push_back(v);
        inner.notify.notify_one();
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().queue.is_empty()
    }

    /// Marks the channel closed; pending and future `recv`s see `None` once drained.
    pub fn close(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.closed = true;
        inner.notify.notify_all();
    }

    /// Receives the next value, waiting in virtual time.
    ///
    /// Returns `None` once the channel is closed and drained.
    pub async fn recv(&self) -> Option<T> {
        loop {
            {
                let mut inner = self.inner.borrow_mut();
                if let Some(v) = inner.queue.pop_front() {
                    return Some(v);
                }
                if inner.closed {
                    return None;
                }
            }
            // SAFETY-free wait: the Notified future keeps only a shared
            // borrow while polled; the channel borrow above is released.
            let notified = {
                let inner = self.inner.borrow();
                // Extend the lifetime by re-borrowing through Rc each loop.
                // We cannot hold `inner` across await, so wait on a clone.
                drop(inner);
                WaitOnChan {
                    chan: Rc::clone(&self.inner),
                    waiter: None,
                }
            };
            notified.await;
        }
    }
}

/// Internal future: waits for the channel's notify without borrowing across await.
struct WaitOnChan<T> {
    chan: Rc<RefCell<ChanInner<T>>>,
    waiter: Option<Rc<RefCell<Waiter>>>,
}

impl<T> Future for WaitOnChan<T> {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if let Some(w) = &self.waiter {
            let mut w = w.borrow_mut();
            if w.fired {
                return Poll::Ready(());
            }
            w.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let chan = self.chan.borrow();
        if !chan.queue.is_empty() || chan.closed || chan.notify.try_take_permit() {
            return Poll::Ready(());
        }
        let w = chan.notify.register(cx.waker().clone());
        drop(chan);
        self.waiter = Some(w);
        Poll::Pending
    }
}

impl<T> Drop for WaitOnChan<T> {
    fn drop(&mut self) {
        if let Some(w) = &self.waiter {
            let mut wb = w.borrow_mut();
            if wb.fired {
                drop(wb);
                self.chan.borrow().notify.inner.borrow_mut().permits += 1;
            } else {
                wb.cancelled = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Sim;
    use std::cell::Cell;

    #[test]
    fn notify_before_wait_is_not_lost() {
        let mut sim = Sim::new();
        let n = Rc::new(Notify::new());
        n.notify_one();
        let n2 = Rc::clone(&n);
        let ok = Rc::new(Cell::new(false));
        let ok2 = Rc::clone(&ok);
        sim.spawn("w", async move {
            n2.notified().await;
            ok2.set(true);
        });
        sim.run();
        assert!(ok.get());
    }

    #[test]
    fn notify_wakes_fifo() {
        let mut sim = Sim::new();
        let n = Rc::new(Notify::new());
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let n = Rc::clone(&n);
            let log = Rc::clone(&log);
            sim.spawn("w", async move {
                n.notified().await;
                log.borrow_mut().push(i);
            });
        }
        let n2 = Rc::clone(&n);
        let h = sim.handle();
        sim.spawn("k", async move {
            h.sleep(Nanos(1)).await;
            n2.notify_one();
            n2.notify_one();
            n2.notify_one();
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn wait_timeout_times_out() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let n = Rc::new(Notify::new());
        let n2 = Rc::clone(&n);
        let res = Rc::new(Cell::new(true));
        let res2 = Rc::clone(&res);
        sim.spawn("w", async move {
            let got = n2.wait_timeout(&h, Nanos::from_micros(5)).await;
            res2.set(got);
        });
        let end = sim.run();
        assert!(!res.get());
        assert_eq!(end, Nanos::from_micros(5));
        drop(n);
    }

    #[test]
    fn wait_timeout_notified_early() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let h2 = h.clone();
        let n = Rc::new(Notify::new());
        let n2 = Rc::clone(&n);
        let n3 = Rc::clone(&n);
        let res = Rc::new(Cell::new(false));
        let res2 = Rc::clone(&res);
        sim.spawn("w", async move {
            res2.set(n2.wait_timeout(&h, Nanos::from_millis(1)).await);
        });
        sim.spawn("k", async move {
            h2.sleep(Nanos::from_micros(3)).await;
            n3.notify_one();
        });
        let end = sim.run();
        assert!(res.get());
        // The stale timeout timer still fires at 1ms, but nothing reacts.
        assert_eq!(end, Nanos::from_millis(1));
    }

    #[test]
    fn chan_delivers_in_order_across_tasks() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let ch: Chan<u32> = Chan::new();
        let tx = ch.clone();
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = Rc::clone(&got);
        sim.spawn("rx", async move {
            while let Some(v) = ch.recv().await {
                got2.borrow_mut().push(v);
            }
        });
        sim.spawn("tx", async move {
            for i in 0..5 {
                h.sleep(Nanos(10)).await;
                tx.send(i);
            }
            tx.close();
        });
        sim.run();
        assert_eq!(*got.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chan_close_unblocks_receiver() {
        let mut sim = Sim::new();
        let ch: Chan<u32> = Chan::new();
        let ch2 = ch.clone();
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        sim.spawn("rx", async move {
            assert!(ch.recv().await.is_none());
            done2.set(true);
        });
        sim.spawn("closer", async move {
            ch2.close();
        });
        sim.run();
        assert!(done.get());
    }
}
