//! Virtual time for the discrete-event simulator.
//!
//! All simulated durations and instants are expressed in nanoseconds of
//! *virtual* time. Virtual time only advances when the executor processes a
//! timer event, so two runs with the same seed produce identical timelines.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero-length span.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Scales the span by a dimensionless factor, rounding to nearest.
    pub fn mul_f64(self, f: f64) -> Nanos {
        Nanos((self.0 as f64 * f).round() as u64)
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Nanos::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((Nanos::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(40);
        assert_eq!(a + b, Nanos(140));
        assert_eq!(a - b, Nanos(60));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.mul_f64(0.5), Nanos(50));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos(17)), "17ns");
        assert_eq!(format!("{}", Nanos::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", Nanos::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(3)), "3.000s");
    }
}
