//! Small deterministic PRNG for workload generation.
//!
//! The simulator must be reproducible from a seed, so all stochastic
//! workload choices go through this xoshiro256**-based generator rather
//! than any global RNG.

use std::cell::Cell;

/// A seeded xoshiro256** generator.
///
/// Interior mutability lets workloads share one generator through `Rc`
/// without threading `&mut` everywhere; the simulator is single-threaded.
pub struct SimRng {
    s: Cell<[u64; 4]>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the seed of child stream `stream` from a parent `seed`.
///
/// Both inputs pass through the splitmix64 finalizer before mixing, so
/// nearby seeds and nearby stream indices land in unrelated states — a
/// plain `seed ^ (stream + 1) * PHI` keeps the low-entropy structure of
/// both inputs and lets streams collide or correlate across adjacent
/// seeds (e.g. `stream_seed(s, 1) == stream_seed(s ^ PHI, 0)` under the
/// xor scheme). Used by the workload generator for per-tenant streams.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut s = stream;
    let mixed = splitmix64(&mut s);
    let mut t = seed ^ mixed;
    splitmix64(&mut t)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s: Cell::new(s) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&self) -> u64 {
        let mut s = self.s.get();
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s.set(s);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn gen_range(&self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let l = m as u64;
            if l >= bound || l >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo);
        lo + self.gen_range((hi - lo) as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn gen_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fills a byte slice with pseudo-random data.
    pub fn fill_bytes(&self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            v.swap(i, j);
        }
    }

    /// Samples from the size CDF of the paper's quoted request traces:
    /// 95.1% of Twitter memcached requests are ≤ 10 KB (§2.2).
    ///
    /// Small requests are drawn log-uniform in [64 B, 10 KB]; the 4.9% tail
    /// is log-uniform in (10 KB, 256 KB].
    pub fn trace_request_size(&self) -> usize {
        let (lo, hi) = if self.gen_bool(0.951) {
            (64f64, 10.0 * 1024.0)
        } else {
            (10.0 * 1024.0, 256.0 * 1024.0)
        };
        let x = lo * (hi / lo).powf(self.gen_f64());
        x as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a = SimRng::new(7);
        let b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SimRng::new(1);
        let b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let r = SimRng::new(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let r = SimRng::new(9);
        let mut buf = [0u8; 23];
        r.fill_bytes(&mut buf);
        // 23 zero bytes after filling would be astronomically unlikely.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn trace_sizes_match_quoted_percentile() {
        let r = SimRng::new(123);
        let n = 20_000;
        let small = (0..n)
            .filter(|_| r.trace_request_size() <= 10 * 1024)
            .count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.951).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn stream_seeds_decorrelate_nearby_inputs() {
        // The xor/PHI scheme this replaces had exact cross-seed
        // collisions: seed ^ (a+1)*PHI == seed' ^ (b+1)*PHI whenever
        // seed' = seed ^ (a-b)*PHI. The finalizer-based derivation must
        // not reproduce them.
        const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
        let seed = 42u64;
        let seed2 = seed ^ PHI; // collided with (seed, stream 1) before
        assert_ne!(stream_seed(seed, 1), stream_seed(seed2, 0));
        // And streams under one seed are pairwise distinct.
        let mut seen = std::collections::HashSet::new();
        for t in 0..64 {
            assert!(seen.insert(stream_seed(seed, t)));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let r = SimRng::new(5);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
