//! Deterministic open-loop overload workloads (multi-tenant).
//!
//! The overload experiments need traffic that does **not** slow down when
//! the service does — an open-loop arrival process — and they need it to
//! be reproducible from a seed, like [`crate::fault::FaultPlan`]. A
//! [`WorkloadPlan`] precomputes, per tenant, a sorted schedule of
//! submission instants (exponential inter-arrival gaps) and copy lengths
//! (uniform in a configured range). Each tenant draws from its own PRNG
//! stream derived from `(seed, tenant)`, so adding a tenant never
//! perturbs the others' schedules and any run is fully determined by the
//! config.
//!
//! The plan only *schedules*; harnesses own the submission mechanics
//! (amemcpy, credit handling, what to do on `Overloaded`).

use std::rc::Rc;

use crate::rng::{stream_seed, SimRng};
use crate::time::Nanos;
use crate::trace::{Trace, TraceEvent, Tracer};

/// One scheduled submission for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual instant the request enters the system.
    pub at: Nanos,
    /// Bytes the request asks the service to copy.
    pub len: usize,
}

/// Per-tenant inter-arrival gap distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalDist {
    /// Exponential gaps (Poisson arrivals) with mean `mean_gap` — the
    /// legacy default; its draw sequence is pinned by the golden test.
    Exponential,
    /// Heavy-tailed bounded-Pareto gaps: most gaps are short bursts,
    /// rare gaps are long silences — the soak benchmark's tenant shape.
    /// The lower bound is derived so the distribution's mean is exactly
    /// `mean_gap`; the upper bound is `spread` times the lower.
    BoundedPareto {
        /// Tail index (> 0; heavier tail as it approaches 1).
        alpha: f64,
        /// Upper/lower bound ratio (> 1).
        spread: f64,
    },
}

/// Per-request copy-length distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LenDist {
    /// Uniform in `[len_min, len_max]` — the legacy default; its draw
    /// sequence is pinned by the golden test.
    Uniform,
    /// Heavy-tailed bounded Pareto on `[len_min, len_max]`: mostly small
    /// copies with a fat tail of large ones (elephants-and-mice).
    BoundedPareto {
        /// Tail index (> 0; heavier tail as it approaches 1).
        alpha: f64,
    },
}

/// Configuration of a seeded open-loop multi-tenant workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Seed all per-tenant PRNG streams derive from.
    pub seed: u64,
    /// Number of independent tenants.
    pub tenants: usize,
    /// Mean inter-arrival gap per tenant (any [`ArrivalDist`]).
    pub mean_gap: Nanos,
    /// Minimum copy length (inclusive).
    pub len_min: usize,
    /// Maximum copy length (inclusive).
    pub len_max: usize,
    /// Arrivals are generated in `[0, horizon)`.
    pub horizon: Nanos,
    /// Inter-arrival gap shape.
    pub arrival: ArrivalDist,
    /// Copy-length shape.
    pub length: LenDist,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0,
            tenants: 2,
            mean_gap: Nanos::from_micros(10),
            len_min: 16 * 1024,
            len_max: 64 * 1024,
            horizon: Nanos::from_millis(1),
            arrival: ArrivalDist::Exponential,
            length: LenDist::Uniform,
        }
    }
}

/// Inverse CDF of the bounded Pareto on `[lo, hi]` with tail index
/// `alpha`, evaluated at `u ∈ [0, 1)`.
fn bounded_pareto(u: f64, lo: f64, hi: f64, alpha: f64) -> f64 {
    let r = (lo / hi).powf(alpha);
    lo * (1.0 - u * (1.0 - r)).powf(-1.0 / alpha)
}

/// `E[X] / L` for the bounded Pareto on `[L, spread·L]` — used to derive
/// the lower bound that hits a configured mean exactly.
fn bounded_pareto_mean_factor(alpha: f64, spread: f64) -> f64 {
    if (alpha - 1.0).abs() < 1e-9 {
        // α → 1 limit of the general form below.
        spread.ln() * spread / (spread - 1.0)
    } else {
        (alpha / (alpha - 1.0)) * (1.0 - spread.powf(1.0 - alpha)) / (1.0 - spread.powf(-alpha))
    }
}

/// A precomputed, seed-deterministic open-loop workload.
pub struct WorkloadPlan {
    cfg: WorkloadConfig,
    /// `per_tenant[t]` is tenant `t`'s schedule, sorted by `at`.
    per_tenant: Vec<Vec<Arrival>>,
}

impl std::fmt::Debug for WorkloadPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadPlan")
            .field("cfg", &self.cfg)
            .field("arrivals", &self.total_arrivals())
            .finish()
    }
}

impl WorkloadPlan {
    /// Generates the full schedule from `cfg`.
    pub fn new(cfg: WorkloadConfig) -> Rc<Self> {
        assert!(cfg.tenants > 0, "workload needs at least one tenant");
        assert!(cfg.mean_gap > Nanos::ZERO, "mean gap must be positive");
        assert!(
            0 < cfg.len_min && cfg.len_min <= cfg.len_max,
            "degenerate length range"
        );
        if let ArrivalDist::BoundedPareto { alpha, spread } = cfg.arrival {
            assert!(alpha > 0.0 && spread > 1.0, "degenerate Pareto arrivals");
        }
        if let LenDist::BoundedPareto { alpha } = cfg.length {
            assert!(alpha > 0.0, "degenerate Pareto lengths");
        }
        // Lower gap bound hitting `mean_gap` exactly (Pareto arrivals).
        let gap_lo = match cfg.arrival {
            ArrivalDist::Exponential => 0.0,
            ArrivalDist::BoundedPareto { alpha, spread } => {
                cfg.mean_gap.as_nanos() as f64 / bounded_pareto_mean_factor(alpha, spread)
            }
        };
        let per_tenant = (0..cfg.tenants)
            .map(|t| {
                // Independent stream per tenant, derived through the
                // splitmix64 finalizer. The previous xor-with-(t+1)·PHI
                // derivation collided streams across nearby seeds (see
                // `stream_seed`); switching is a deliberate, documented
                // determinism break pinned by the golden test below.
                // Every shape consumes exactly one raw draw per gap and
                // one per length, so the default (Exponential/Uniform)
                // sequence is bit-identical to the pre-`ArrivalDist`
                // code — the golden test below pins it.
                let rng = SimRng::new(stream_seed(cfg.seed, t as u64));
                let mut sched = Vec::new();
                let mut now = Nanos::ZERO;
                loop {
                    // Gap with the configured mean; clamp away from zero
                    // so two arrivals never share an instant.
                    let u = rng.gen_f64();
                    let gap = match cfg.arrival {
                        ArrivalDist::Exponential => {
                            (-(1.0 - u).ln() * cfg.mean_gap.as_nanos() as f64) as u64
                        }
                        ArrivalDist::BoundedPareto { alpha, spread } => {
                            bounded_pareto(u, gap_lo, gap_lo * spread, alpha) as u64
                        }
                    };
                    now += Nanos(gap.max(1));
                    if now >= cfg.horizon {
                        break;
                    }
                    let len = match cfg.length {
                        LenDist::Uniform => {
                            cfg.len_min
                                + rng.gen_range((cfg.len_max - cfg.len_min + 1) as u64) as usize
                        }
                        LenDist::BoundedPareto { alpha } => {
                            let u = rng.gen_f64();
                            (bounded_pareto(u, cfg.len_min as f64, cfg.len_max as f64, alpha)
                                as usize)
                                .clamp(cfg.len_min, cfg.len_max)
                        }
                    };
                    sched.push(Arrival { at: now, len });
                }
                sched
            })
            .collect();
        Rc::new(WorkloadPlan { cfg, per_tenant })
    }

    /// Rebuilds a plan from the `Submission` events of a recorded trace
    /// (consume-from-log mode). `cfg` supplies the envelope the original
    /// run used; only its `tenants` count must cover the recorded tenant
    /// indices — the schedule itself comes entirely from the log, so no
    /// PRNG is consulted.
    pub fn from_trace(cfg: WorkloadConfig, trace: &Trace) -> Rc<Self> {
        assert!(cfg.tenants > 0, "workload needs at least one tenant");
        let mut per_tenant: Vec<Vec<Arrival>> = vec![Vec::new(); cfg.tenants];
        for (tenant, at, len) in trace.submissions() {
            let t = tenant as usize;
            assert!(
                t < cfg.tenants,
                "trace names tenant {t} but config has {}",
                cfg.tenants
            );
            per_tenant[t].push(Arrival {
                at: Nanos(at),
                len: len as usize,
            });
        }
        for sched in &mut per_tenant {
            sched.sort_by_key(|a| a.at);
        }
        Rc::new(WorkloadPlan { cfg, per_tenant })
    }

    /// Records the full merged schedule into `tracer` as `Submission`
    /// events. In record mode this captures the workload for later
    /// `from_trace` reconstruction; in replay mode the same call
    /// lockstep-verifies that the regenerated schedule matches the log.
    pub fn record_to(&self, tracer: &Tracer) {
        for (t, a) in self.merged() {
            tracer.emit(TraceEvent::Submission {
                tenant: t as u32,
                at: a.at.as_nanos(),
                len: a.len as u64,
            });
        }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Tenant `t`'s schedule, sorted by arrival instant.
    pub fn tenant(&self, t: usize) -> &[Arrival] {
        &self.per_tenant[t]
    }

    /// Total arrivals across all tenants.
    pub fn total_arrivals(&self) -> usize {
        self.per_tenant.iter().map(Vec::len).sum()
    }

    /// All arrivals merged across tenants, sorted by `(at, tenant)` —
    /// the interleaved submission order a shared service front-end sees.
    /// Deterministic for a given config like everything else here.
    pub fn merged(&self) -> Vec<(usize, Arrival)> {
        let mut all: Vec<(usize, Arrival)> = self
            .per_tenant
            .iter()
            .enumerate()
            .flat_map(|(t, sched)| sched.iter().map(move |&a| (t, a)))
            .collect();
        all.sort_by_key(|&(t, a)| (a.at, t));
        all
    }

    /// Total bytes the workload offers the service over the horizon.
    pub fn offered_bytes(&self) -> u64 {
        self.per_tenant.iter().flatten().map(|a| a.len as u64).sum()
    }

    /// Bytes tenant `t` alone offers over the horizon. The shard-scaling
    /// bench aggregates these by shard owner to report how evenly the
    /// space-hash partitioning spread the offered load.
    pub fn offered_bytes_tenant(&self, t: usize) -> u64 {
        self.per_tenant[t].iter().map(|a| a.len as u64).sum()
    }

    /// Offered load in bytes per nanosecond (all tenants combined).
    pub fn offered_rate(&self) -> f64 {
        self.offered_bytes() as f64 / self.cfg.horizon.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            seed,
            tenants: 3,
            mean_gap: Nanos::from_micros(5),
            len_min: 4 * 1024,
            len_max: 32 * 1024,
            horizon: Nanos::from_millis(2),
            ..Default::default()
        }
    }

    #[test]
    fn same_seed_identical_schedule() {
        let a = WorkloadPlan::new(cfg(42));
        let b = WorkloadPlan::new(cfg(42));
        for t in 0..3 {
            assert_eq!(a.tenant(t), b.tenant(t));
        }
        assert!(a.total_arrivals() > 100, "2 ms at ~5 µs gaps");
        assert_eq!(a.offered_bytes(), b.offered_bytes());
    }

    #[test]
    fn schedules_sorted_within_horizon_and_lengths_in_range() {
        let p = WorkloadPlan::new(cfg(7));
        for t in 0..3 {
            let s = p.tenant(t);
            assert!(s.windows(2).all(|w| w[0].at < w[1].at));
            assert!(s.iter().all(|a| a.at < p.config().horizon));
            assert!(s.iter().all(|a| (4 * 1024..=32 * 1024).contains(&a.len)));
        }
    }

    #[test]
    fn tenants_draw_independent_streams() {
        let p = WorkloadPlan::new(cfg(9));
        assert_ne!(p.tenant(0), p.tenant(1), "streams must differ");
        // Removing a tenant leaves the survivors' schedules untouched.
        let fewer = WorkloadPlan::new(WorkloadConfig {
            tenants: 2,
            ..cfg(9)
        });
        assert_eq!(p.tenant(0), fewer.tenant(0));
        assert_eq!(p.tenant(1), fewer.tenant(1));
    }

    #[test]
    fn merged_interleaves_all_tenants_in_time_order() {
        let p = WorkloadPlan::new(cfg(11));
        let m = p.merged();
        assert_eq!(m.len(), p.total_arrivals());
        assert!(m
            .windows(2)
            .all(|w| (w[0].1.at, w[0].0) < (w[1].1.at, w[1].0)));
        // Filtering the merged stream by tenant recovers each schedule.
        for t in 0..3 {
            let back: Vec<Arrival> = m.iter().filter(|(tt, _)| *tt == t).map(|x| x.1).collect();
            assert_eq!(back, p.tenant(t));
        }
    }

    #[test]
    fn golden_schedule_pins_stream_derivation() {
        // Golden outputs for the splitmix64-finalizer stream derivation.
        // These values changed (deliberately) when the xor/PHI scheme
        // was replaced; if they change again, that is a determinism
        // break every recorded trace and EXPERIMENTS number depends on —
        // document it or revert.
        let p = WorkloadPlan::new(cfg(42));
        let first: Vec<(u64, usize)> = (0..3)
            .map(|t| {
                let a = p.tenant(t)[0];
                (a.at.as_nanos(), a.len)
            })
            .collect();
        assert_eq!(first, &[(457, 9986), (12939, 28916), (9899, 32699)]);
        assert_eq!(p.total_arrivals(), 1168);
        assert_eq!(p.offered_bytes(), 21_486_559);
    }

    #[test]
    fn trace_roundtrip_reconstructs_schedule() {
        use crate::trace::Tracer;
        let p = WorkloadPlan::new(cfg(13));
        let rec = Tracer::record();
        p.record_to(&rec);
        let trace = rec.finish();
        let back = WorkloadPlan::from_trace(cfg(13), &trace);
        for t in 0..3 {
            assert_eq!(back.tenant(t), p.tenant(t));
        }
        // Replaying the same plan against its own log is divergence-free.
        let rep = Tracer::replay(trace);
        p.record_to(&rep);
        assert_eq!(rep.divergence(), None);
    }

    fn pareto_cfg(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            arrival: ArrivalDist::BoundedPareto {
                alpha: 1.5,
                spread: 1000.0,
            },
            length: LenDist::BoundedPareto { alpha: 1.2 },
            ..cfg(seed)
        }
    }

    #[test]
    fn pareto_same_seed_identical_schedule() {
        let a = WorkloadPlan::new(pareto_cfg(42));
        let b = WorkloadPlan::new(pareto_cfg(42));
        for t in 0..3 {
            assert_eq!(a.tenant(t), b.tenant(t));
        }
        // Heavy-tailed lengths stay inside the configured bounds.
        for t in 0..3 {
            assert!(a
                .tenant(t)
                .iter()
                .all(|x| (4 * 1024..=32 * 1024).contains(&x.len)));
        }
    }

    #[test]
    fn pareto_golden_schedule_pins_draws() {
        // Golden outputs for the bounded-Pareto option (seed 42,
        // α_gap = 1.5, spread = 1000, α_len = 1.2). If these change,
        // that is a determinism break — document it or revert.
        let p = WorkloadPlan::new(pareto_cfg(42));
        let first: Vec<(u64, usize)> = (0..3)
            .map(|t| {
                let a = p.tenant(t)[0];
                (a.at.as_nanos(), a.len)
            })
            .collect();
        assert_eq!(first, &[(1829, 4874), (9658, 15296), (6441, 32049)]);
        assert_eq!(
            (p.total_arrivals(), p.offered_bytes()),
            (1149, 10_537_818),
            "totals"
        );
    }

    #[test]
    fn pareto_default_draws_unperturbed() {
        // Adding the distribution options must not move the default
        // (Exponential/Uniform) draw sequence: rebuilt via `..Default`
        // it still matches the legacy golden schedule.
        let p = WorkloadPlan::new(WorkloadConfig {
            arrival: ArrivalDist::Exponential,
            length: LenDist::Uniform,
            ..cfg(42)
        });
        assert_eq!(p.total_arrivals(), 1168);
        assert_eq!(p.offered_bytes(), 21_486_559);
    }

    #[test]
    fn pareto_mean_gap_matches_config() {
        // The derived lower bound makes the *distribution* mean equal
        // `mean_gap`; with a heavy tail the sample mean converges slowly,
        // so allow a generous band over ~10k draws.
        let p = WorkloadPlan::new(WorkloadConfig {
            horizon: Nanos::from_millis(100),
            ..pareto_cfg(3)
        });
        let s = p.tenant(0);
        let mean = s.last().unwrap().at.as_nanos() / s.len() as u64;
        assert!((3_000..=7_500).contains(&mean), "sample mean {mean} ns");
        // Heavy tail: the largest gap dwarfs the median gap.
        let mut gaps: Vec<u64> = s
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_nanos())
            .collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        let max = *gaps.last().unwrap();
        assert!(
            max > 20 * median,
            "tail too light: max {max}, median {median}"
        );
    }

    #[test]
    fn mean_gap_roughly_matches_config() {
        let p = WorkloadPlan::new(WorkloadConfig {
            horizon: Nanos::from_millis(50),
            ..cfg(3)
        });
        let s = p.tenant(0);
        let mean = s.last().unwrap().at.as_nanos() / s.len() as u64;
        // Exponential with mean 5 µs: the sample mean over ~10k draws
        // lands well inside ±20%.
        assert!((4_000..=6_000).contains(&mean), "sample mean {mean} ns");
    }
}
