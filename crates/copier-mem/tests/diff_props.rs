//! Differential properties for the arena-backed fast paths against their
//! per-page reference implementations, with shrinking.
//!
//! Two layers are cross-checked:
//!
//! * `PhysMem::copy_run` (single coalesced memcpy/memmove) against both a
//!   flat `Vec<u8>` model and the page-tiled `copy_run_paged` baseline,
//!   over random op sequences including overlapping runs;
//! * `AddressSpace::resolve_range` (batched walk + settled fast pass)
//!   against the per-page `resolve` loop and `extents()`, on twin spaces
//!   built from the same random script — including demand-zero, CoW
//!   breaks after `fork`, read-only protection faults, and unmapped
//!   guard pages. Extents, fault work, cumulative fault stats, and error
//!   values must all agree.

use std::rc::Rc;

use copier_mem::{
    frames_of, AddressSpace, AllocPolicy, FrameId, MemError, PhysMem, Prot, VirtAddr, PAGE_SIZE,
};
use copier_testkit::{check_with, shrink_vec, Config, TestRng};
use copier_testkit::{prop_assert, prop_assert_eq};

// ---------------------------------------------------------------------------
// copy_run vs. flat model vs. copy_run_paged
// ---------------------------------------------------------------------------

const FRAMES: usize = 8;
const ARENA: usize = FRAMES * PAGE_SIZE;

/// One copy op in absolute arena byte positions (may overlap, may span
/// several pages on either side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CopyOp {
    dst: usize,
    src: usize,
    len: usize,
}

/// Positions biased toward page boundaries, where the tiling logic lives.
fn gen_pos(rng: &mut TestRng, max: usize) -> usize {
    if rng.gen_bool(0.5) {
        let page = rng.range_usize(0, max / PAGE_SIZE + 1);
        let delta = rng.range_usize(0, 5);
        (page * PAGE_SIZE).saturating_sub(delta / 2).min(max)
    } else {
        rng.range_usize(0, max + 1)
    }
}

fn gen_copy_op(rng: &mut TestRng) -> CopyOp {
    let len = if rng.gen_bool(0.3) {
        rng.range_usize(0, 3 * PAGE_SIZE)
    } else {
        rng.range_usize(0, 64)
    };
    let len = len.min(ARENA);
    let dst = gen_pos(rng, ARENA - len);
    // Half the time, place src near dst so the runs overlap.
    let src = if rng.gen_bool(0.5) {
        let jitter = rng.range_usize(0, 2 * PAGE_SIZE);
        (dst + jitter).saturating_sub(PAGE_SIZE).min(ARENA - len)
    } else {
        gen_pos(rng, ARENA - len)
    };
    CopyOp { dst, src, len }
}

fn shrink_copy_op(op: &CopyOp) -> Vec<CopyOp> {
    let mut out = vec![
        CopyOp {
            len: op.len / 2,
            ..*op
        },
        CopyOp {
            dst: op.dst / 2,
            ..*op
        },
        CopyOp {
            src: op.src / 2,
            ..*op
        },
        CopyOp { src: op.dst, ..*op }, // degenerate self-copy
    ];
    out.retain(|c| c != op);
    out
}

fn arena_pool() -> (Rc<PhysMem>, FrameId) {
    let pm = Rc::new(PhysMem::new(FRAMES, AllocPolicy::Sequential));
    let base = pm.alloc_contiguous(FRAMES).unwrap();
    assert_eq!(base, FrameId(0));
    (pm, base)
}

fn at(base: FrameId, pos: usize) -> (FrameId, usize) {
    (FrameId(base.0 + (pos / PAGE_SIZE) as u32), pos % PAGE_SIZE)
}

#[test]
fn copy_run_matches_flat_model_and_paged_baseline() {
    check_with(
        &Config::from_env(),
        |rng| {
            let n = rng.range_usize(1, 12);
            (0..n).map(|_| gen_copy_op(rng)).collect::<Vec<_>>()
        },
        |ops| shrink_vec(ops, shrink_copy_op),
        |ops| {
            let (pm_run, base_run) = arena_pool();
            let (pm_paged, base_paged) = arena_pool();
            let mut model: Vec<u8> = (0..ARENA).map(|i| (i % 251) as u8).collect();
            pm_run.write_run(base_run, 0, &model);
            pm_paged.write_run(base_paged, 0, &model);

            for op in ops {
                let (df, doff) = at(base_run, op.dst);
                let (sf, soff) = at(base_run, op.src);
                pm_run.copy_run(df, doff, sf, soff, op.len);
                let (df, doff) = at(base_paged, op.dst);
                let (sf, soff) = at(base_paged, op.src);
                pm_paged.copy_run_paged(df, doff, sf, soff, op.len);
                model.copy_within(op.src..op.src + op.len, op.dst);
            }

            let mut got_run = vec![0u8; ARENA];
            let mut got_paged = vec![0u8; ARENA];
            pm_run.read_run(base_run, 0, &mut got_run);
            pm_paged.read_run(base_paged, 0, &mut got_paged);
            prop_assert!(got_run == model, "copy_run diverged from flat model");
            prop_assert!(
                got_paged == model,
                "copy_run_paged diverged from flat model"
            );
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------------
// resolve_range vs. per-page reference on twin scripted spaces
// ---------------------------------------------------------------------------

/// One step of the address-space setup script. Region/space indices are
/// taken modulo the current counts so shrinking never invalidates them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetupOp {
    Mmap {
        pages: usize,
        writable: bool,
        populate: bool,
    },
    Write {
        space: usize,
        region: usize,
        off: usize,
        len: usize,
    },
    Fork,
}

fn gen_setup_op(rng: &mut TestRng) -> SetupOp {
    match rng.gen_range(10) {
        0..=3 => SetupOp::Mmap {
            pages: rng.range_usize(1, 7),
            writable: rng.gen_bool(0.8),
            populate: rng.gen_bool(0.5),
        },
        4..=7 => SetupOp::Write {
            space: rng.range_usize(0, 4),
            region: rng.range_usize(0, 8),
            off: rng.range_usize(0, 3 * PAGE_SIZE),
            len: rng.range_usize(1, 2 * PAGE_SIZE),
        },
        _ => SetupOp::Fork,
    }
}

fn shrink_setup_op(op: &SetupOp) -> Vec<SetupOp> {
    let mut out = Vec::new();
    match *op {
        SetupOp::Mmap {
            pages,
            writable,
            populate,
        } => {
            if pages > 1 {
                out.push(SetupOp::Mmap {
                    pages: pages / 2,
                    writable,
                    populate,
                });
            }
            if !populate {
                out.push(SetupOp::Mmap {
                    pages,
                    writable,
                    populate: true,
                });
            }
            if !writable {
                out.push(SetupOp::Mmap {
                    pages,
                    writable: true,
                    populate,
                });
            }
        }
        SetupOp::Write {
            space,
            region,
            off,
            len,
        } => {
            out.push(SetupOp::Write {
                space,
                region,
                off: off / 2,
                len,
            });
            out.push(SetupOp::Write {
                space,
                region,
                off,
                len: len / 2,
            });
            if space > 0 {
                out.push(SetupOp::Write {
                    space: 0,
                    region,
                    off,
                    len,
                });
            }
            if region > 0 {
                out.push(SetupOp::Write {
                    space,
                    region: 0,
                    off,
                    len,
                });
            }
            out.retain(|c| c != op);
        }
        SetupOp::Fork => {}
    }
    out
}

/// The query run after setup, against one of the built spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Query {
    space: usize,
    region: usize,
    off: usize,
    len: usize,
    write: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Case {
    script: Vec<SetupOp>,
    query: Query,
}

fn gen_case(rng: &mut TestRng) -> Case {
    let n = rng.range_usize(1, 10);
    let mut script: Vec<SetupOp> = (0..n).map(|_| gen_setup_op(rng)).collect();
    // Ensure at least one region exists so the query usually lands.
    script.insert(
        0,
        SetupOp::Mmap {
            pages: rng.range_usize(2, 7),
            writable: true,
            populate: rng.gen_bool(0.5),
        },
    );
    Case {
        script,
        query: Query {
            space: rng.range_usize(0, 4),
            region: rng.range_usize(0, 8),
            off: rng.range_usize(0, 4 * PAGE_SIZE),
            // Occasionally overshoot the region into the guard page.
            len: rng.range_usize(1, 6 * PAGE_SIZE + 1),
            write: rng.gen_bool(0.5),
        },
    }
}

fn shrink_case(case: &Case) -> Vec<Case> {
    let mut out: Vec<Case> = shrink_vec(&case.script, shrink_setup_op)
        .into_iter()
        .filter(|s| !s.is_empty())
        .map(|script| Case {
            script,
            query: case.query,
        })
        .collect();
    let q = case.query;
    for cand in [
        Query {
            off: q.off / 2,
            ..q
        },
        Query {
            len: q.len / 2 + 1,
            ..q
        },
        Query { write: false, ..q },
        Query { space: 0, ..q },
        Query { region: 0, ..q },
    ] {
        if cand != q {
            out.push(Case {
                script: case.script.clone(),
                query: cand,
            });
        }
    }
    out
}

/// Builds one instance of the scripted world: returns the physical pool,
/// all spaces (root first, then forked children), and the mapped regions
/// as `(va, bytes)`.
#[allow(clippy::type_complexity)]
fn build(script: &[SetupOp]) -> (Rc<PhysMem>, Vec<Rc<AddressSpace>>, Vec<(VirtAddr, usize)>) {
    let pm = Rc::new(PhysMem::new(512, AllocPolicy::Sequential));
    let mut spaces = vec![AddressSpace::new(1, Rc::clone(&pm))];
    let mut regions: Vec<(VirtAddr, usize)> = Vec::new();
    for (i, op) in script.iter().enumerate() {
        match *op {
            SetupOp::Mmap {
                pages,
                writable,
                populate,
            } => {
                let prot = if writable { Prot::RW } else { Prot::RO };
                // All spaces share one VA layout (forks clone it), so only
                // root-mapped regions are addressable everywhere; map in
                // the root and record it.
                let va = spaces[0].mmap(pages * PAGE_SIZE, prot, populate).unwrap();
                regions.push((va, pages * PAGE_SIZE));
            }
            SetupOp::Write {
                space,
                region,
                off,
                len,
            } => {
                if regions.is_empty() {
                    continue;
                }
                let asp = &spaces[space % spaces.len()];
                let (va, bytes) = regions[region % regions.len()];
                let off = off % bytes;
                let len = len.min(bytes - off).max(1);
                let data: Vec<u8> = (0..len).map(|k| (k as u8) ^ (i as u8)).collect();
                // May legitimately fail (read-only region, region mapped
                // after this space forked): both twins fail identically.
                let _ = asp.write_bytes(va.add(off), &data);
            }
            SetupOp::Fork => {
                let child_id = spaces.len() as u32 + 1;
                let child = spaces[0].fork(child_id).unwrap();
                spaces.push(child);
            }
        }
    }
    (pm, spaces, regions)
}

/// Per-page reference for the gather walk: `resolve` page by page, then
/// `extents()` over the whole window. Mirrors exactly what
/// `resolve_range` replaced.
#[allow(clippy::type_complexity)]
fn reference_walk(
    asp: &AddressSpace,
    va: VirtAddr,
    len: usize,
    write: bool,
) -> Result<(Vec<copier_mem::Extent>, Vec<FrameId>, copier_mem::FaultWork), MemError> {
    let first = va.vpn();
    let last = VirtAddr(va.0 + (len - 1) as u64).vpn();
    let mut frames = Vec::new();
    let mut work = copier_mem::FaultWork::default();
    for p in first..=last {
        let (f, w) = asp.resolve(VirtAddr(p * PAGE_SIZE as u64), write)?;
        frames.push(f);
        work.add(w);
    }
    let extents = asp.extents(va, len)?;
    Ok((extents, frames, work))
}

#[test]
fn resolve_range_matches_per_page_reference() {
    check_with(&Config::from_env(), gen_case, shrink_case, |case| {
        // Twin worlds from the same script: A answers with the batched
        // walk, B with the per-page reference.
        let (pm_a, spaces_a, regions) = build(&case.script);
        let (pm_b, spaces_b, _) = build(&case.script);
        if regions.is_empty() {
            return Ok(());
        }
        let q = case.query;
        let (va, bytes) = regions[q.region % regions.len()];
        let off = q.off % bytes;
        let va = va.add(off);
        let len = q.len.max(1); // may overshoot into the guard page
        let a = &spaces_a[q.space % spaces_a.len()];
        let b = &spaces_b[q.space % spaces_b.len()];
        prop_assert_eq!(a.fault_stats(), b.fault_stats(), "twin setup stats");

        let got = a.resolve_range(va, len, q.write);
        let want = reference_walk(b, va, len, q.write);
        match (got, want) {
            (Ok((ex, work)), Ok((ref_ex, ref_frames, ref_work))) => {
                prop_assert_eq!(&ex, &ref_ex, "extents");
                prop_assert_eq!(frames_of(&ex), ref_frames, "frames");
                prop_assert_eq!(work, ref_work, "fault work");
            }
            (Err(e), Err(ref_e)) => {
                prop_assert_eq!(e, ref_e, "error value");
            }
            (got, want) => {
                return Err(format!(
                    "outcome mismatch: batched={got:?} reference={want:?}"
                ));
            }
        }
        prop_assert_eq!(a.fault_stats(), b.fault_stats(), "post-walk stats");

        // Pinning front end: success pins exactly the spanned frames,
        // and unpinning drops the pool back to zero pinned. Errors
        // leave nothing pinned.
        if let Ok((ex, frames, _)) = a.resolve_and_pin_range_extents(va, len, q.write) {
            prop_assert_eq!(&frames, &frames_of(&ex), "pinned frames");
            a.unpin_frames(&frames);
        }
        prop_assert_eq!(pm_a.pinned_frames(), 0, "pinned leak");
        prop_assert_eq!(pm_b.pinned_frames(), 0, "reference pinned leak");
        Ok(())
    });
}
