//! Virtual address spaces: VMAs, page tables, demand paging, and CoW.
//!
//! This is the slice of a kernel memory subsystem Copier has to coordinate
//! with (§4.5.4): virtual addresses submitted by clients may be unbacked
//! (on-demand paging), write-protected (CoW), pinned, or simply illegal, and
//! the service must resolve all of that *proactively* in its own context.
//!
//! The model is a per-process [`AddressSpace`]: a `BTreeMap` of VMAs plus a
//! single-level page table mapping virtual page numbers to [`FrameId`]s.
//! A monotonically increasing *generation* is bumped on every change that
//! could invalidate a cached translation — the hook the ATCache (§4.3)
//! subscribes to.

use std::cell::Cell;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use crate::phys::{FrameId, PhysError, PhysMem, PAGE_SIZE};

/// A virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Address plus byte offset.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, off: usize) -> VirtAddr {
        VirtAddr(self.0 + off as u64)
    }

    /// The virtual page number containing this address.
    pub fn vpn(self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// Byte offset within the page.
    pub fn page_off(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Whether the address is page aligned.
    pub fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE as u64)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// Base of the user mmap area.
pub const USER_BASE: u64 = 0x0000_1000_0000;
/// Any address at or above this is a (simulated) kernel address; user tasks
/// naming such addresses fail Copier's security check.
pub const KERNEL_BASE: u64 = 0xFFFF_8000_0000_0000;

/// Page protection bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
}

impl Prot {
    /// Read-only protection.
    pub const RO: Prot = Prot {
        read: true,
        write: false,
    };
    /// Read-write protection.
    pub const RW: Prot = Prot {
        read: true,
        write: true,
    };
}

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Backing frame.
    pub frame: FrameId,
    /// Hardware-writable right now (false for unbroken CoW pages).
    pub writable: bool,
    /// Copy-on-write: a write fault must duplicate the frame.
    pub cow: bool,
}

#[derive(Debug, Clone)]
struct Vma {
    end: u64,
    prot: Prot,
    /// Shared mappings never turn CoW on fork and never break on write.
    shared: bool,
}

/// Why an access could not be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No VMA covers the address, or protection forbids the access — the
    /// process would receive SIGSEGV.
    Segv(VirtAddr),
    /// Physical memory exhausted while handling a fault.
    OutOfMemory,
    /// Physical memory too fragmented for a required contiguous run.
    Fragmented,
    /// The operation would tear down a pinned mapping.
    Pinned(VirtAddr),
    /// Address arithmetic overflowed or the range is empty/kernel-reserved.
    BadRange,
}

impl From<PhysError> for MemError {
    fn from(e: PhysError) -> Self {
        // Exhaustive: each physical cause keeps its identity so fault-path
        // tests (and future compaction logic) can tell them apart.
        match e {
            PhysError::OutOfMemory => MemError::OutOfMemory,
            PhysError::Fragmented => MemError::Fragmented,
        }
    }
}

/// What a fault resolution did, for cost accounting by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultWork {
    /// Page-table walks performed.
    pub walks: u32,
    /// Demand-zero pages allocated.
    pub demand_zero: u32,
    /// CoW faults resolved by re-mapping only (sole owner).
    pub cow_remap: u32,
    /// CoW faults that required a full page copy.
    pub cow_copy: u32,
    /// Bytes physically copied by CoW breaks.
    pub bytes_copied: usize,
}

impl FaultWork {
    /// Accumulates another resolution's work.
    pub fn add(&mut self, o: FaultWork) {
        self.walks += o.walks;
        self.demand_zero += o.demand_zero;
        self.cow_remap += o.cow_remap;
        self.cow_copy += o.cow_copy;
        self.bytes_copied += o.bytes_copied;
    }

    /// Whether any fault (beyond a plain walk) occurred.
    pub fn faulted(&self) -> bool {
        self.demand_zero + self.cow_remap + self.cow_copy > 0
    }
}

/// A physically contiguous extent of a virtual range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First frame of the extent.
    pub frame: FrameId,
    /// Byte offset within the first frame.
    pub off: usize,
    /// Total length in bytes (may span multiple contiguous frames).
    pub len: usize,
}

/// Identifies an address space (process) for diagnostics.
pub type AsId = u32;

/// A simulated process address space.
pub struct AddressSpace {
    id: AsId,
    pm: Rc<PhysMem>,
    vmas: RefCell<BTreeMap<u64, Vma>>,
    pt: RefCell<BTreeMap<u64, Pte>>,
    generation: Cell<u64>,
    next_va: Cell<u64>,
    /// Cumulative fault work, for experiment reporting.
    stats: RefCell<FaultWork>,
}

impl AddressSpace {
    /// Creates an empty address space over the given physical pool.
    pub fn new(id: AsId, pm: Rc<PhysMem>) -> Rc<Self> {
        Rc::new(AddressSpace {
            id,
            pm,
            vmas: RefCell::new(BTreeMap::new()),
            pt: RefCell::new(BTreeMap::new()),
            generation: Cell::new(0),
            next_va: Cell::new(USER_BASE),
            stats: RefCell::new(FaultWork::default()),
        })
    }

    /// This space's id.
    pub fn id(&self) -> AsId {
        self.id
    }

    /// The backing physical pool.
    pub fn phys(&self) -> &Rc<PhysMem> {
        &self.pm
    }

    /// Translation-cache generation; bumped whenever any mapping changes.
    pub fn generation(&self) -> u64 {
        self.generation.get()
    }

    fn bump(&self) {
        self.generation.set(self.generation.get() + 1);
    }

    /// Cumulative fault work since creation.
    pub fn fault_stats(&self) -> FaultWork {
        *self.stats.borrow()
    }

    /// Resets the cumulative fault counters.
    pub fn reset_fault_stats(&self) {
        *self.stats.borrow_mut() = FaultWork::default();
    }

    fn alloc_va(&self, len: usize) -> VirtAddr {
        let pages = len.div_ceil(PAGE_SIZE).max(1) as u64;
        let va = self.next_va.get();
        // A guard page between mappings catches off-by-one overruns.
        self.next_va.set(va + (pages + 1) * PAGE_SIZE as u64);
        VirtAddr(va)
    }

    /// Maps `len` bytes of anonymous memory.
    ///
    /// `populate` eagerly backs every page (like `MAP_POPULATE`); otherwise
    /// pages appear on first touch (demand-zero).
    pub fn mmap(&self, len: usize, prot: Prot, populate: bool) -> Result<VirtAddr, MemError> {
        if len == 0 {
            return Err(MemError::BadRange);
        }
        let va = self.alloc_va(len);
        let pages = len.div_ceil(PAGE_SIZE) as u64;
        self.vmas.borrow_mut().insert(
            va.0,
            Vma {
                end: va.0 + pages * PAGE_SIZE as u64,
                prot,
                shared: false,
            },
        );
        if populate {
            for p in 0..pages {
                let frame = self.pm.alloc()?;
                self.pt.borrow_mut().insert(
                    va.vpn() + p,
                    Pte {
                        frame,
                        writable: prot.write,
                        cow: false,
                    },
                );
            }
        }
        self.bump();
        Ok(va)
    }

    /// Maps existing frames as a *shared* region (e.g. Binder's receive
    /// window, Copier's descriptor shm). Increments each frame's refcount.
    pub fn map_shared(&self, frames: &[FrameId], prot: Prot) -> Result<VirtAddr, MemError> {
        if frames.is_empty() {
            return Err(MemError::BadRange);
        }
        let va = self.alloc_va(frames.len() * PAGE_SIZE);
        self.vmas.borrow_mut().insert(
            va.0,
            Vma {
                end: va.0 + (frames.len() * PAGE_SIZE) as u64,
                prot,
                shared: true,
            },
        );
        let mut pt = self.pt.borrow_mut();
        for (i, &f) in frames.iter().enumerate() {
            self.pm.incref(f);
            pt.insert(
                va.vpn() + i as u64,
                Pte {
                    frame: f,
                    writable: prot.write,
                    cow: false,
                },
            );
        }
        drop(pt);
        self.bump();
        Ok(va)
    }

    /// Unmaps `[va, va+len)`. Fails if any covered frame is pinned.
    pub fn munmap(&self, va: VirtAddr, len: usize) -> Result<(), MemError> {
        let pages = len.div_ceil(PAGE_SIZE) as u64;
        // Refuse if pinned (the paper locks mappings for in-flight copies).
        {
            let pt = self.pt.borrow();
            for p in 0..pages {
                if let Some(pte) = pt.get(&(va.vpn() + p)) {
                    if self.pm.is_pinned(pte.frame) {
                        return Err(MemError::Pinned(VirtAddr(
                            (va.vpn() + p) * PAGE_SIZE as u64,
                        )));
                    }
                }
            }
        }
        let mut pt = self.pt.borrow_mut();
        for p in 0..pages {
            if let Some(pte) = pt.remove(&(va.vpn() + p)) {
                self.pm.decref(pte.frame);
            }
        }
        drop(pt);
        self.vmas.borrow_mut().remove(&va.0);
        self.bump();
        Ok(())
    }

    fn vma_for(&self, va: VirtAddr) -> Option<Vma> {
        let vmas = self.vmas.borrow();
        vmas.range(..=va.0)
            .next_back()
            .filter(|(_, v)| va.0 < v.end)
            .map(|(_, v)| v.clone())
    }

    /// Raw page-table lookup (no faulting).
    pub fn translate(&self, va: VirtAddr) -> Option<Pte> {
        self.pt.borrow().get(&va.vpn()).copied()
    }

    /// Sampled, non-faulting FNV digest of the extent `[va, va+len)`:
    /// folds the length plus the bytes of the extent's first and last
    /// pages via pure page-table lookups. Unmapped pages fold as zeros
    /// (demand-zero semantics), so digesting never touches the space —
    /// no fault, no allocation, no generation bump.
    ///
    /// Used by the crash-recovery journal to detect torn destinations:
    /// head/tail sampling keeps the per-admission cost `O(PAGE_SIZE)`
    /// regardless of extent size, and a partial copy lands a prefix, so
    /// the head page catches it. Equivalent to
    /// [`extent_digest_stride`](Self::extent_digest_stride) with stride 0.
    pub fn extent_digest(&self, va: VirtAddr, len: usize) -> u64 {
        self.extent_digest_stride(va, len, 0)
    }

    /// [`extent_digest`](Self::extent_digest) with a configurable page
    /// sampling stride — the coverage/cost dial:
    ///
    /// * `stride == 0` — legacy head/tail sampling: `O(PAGE_SIZE)` per
    ///   call, catches torn prefixes and truncated tails, but is blind
    ///   to damage confined to interior pages (a mid-extent bit flip
    ///   hashes identically).
    /// * `stride == 1` — full coverage: every page folds in, cost
    ///   `O(len)`. Detects any byte difference; what copy verification
    ///   (`VerifyPolicy::Full` in copier-core) uses.
    /// * `stride == k > 1` — head, tail, and every `k`-th interior page:
    ///   cost `O(len / k)`, detects interior damage with probability
    ///   `~1/k` per corrupted page. A middle ground for sampled
    ///   verification of huge extents.
    ///
    /// Digests are only comparable between calls with the same stride.
    pub fn extent_digest_stride(&self, va: VirtAddr, len: usize, stride: usize) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (len as u64);
        h = h.wrapping_mul(PRIME);
        if len == 0 {
            return h;
        }
        let end = va.0 + len as u64;
        let page = PAGE_SIZE as u64;
        let last_vpn = (end - 1) / page;
        let mut buf = [0u8; PAGE_SIZE];
        let mut vpn = va.vpn();
        while vpn <= last_vpn {
            let idx = vpn - va.vpn();
            let sampled =
                idx == 0 || vpn == last_vpn || (stride >= 1 && idx.is_multiple_of(stride as u64));
            if !sampled {
                // Skip straight to the next sampled page (the tail page
                // is always sampled, so never jump past it).
                vpn = (vpn + (stride as u64 - idx % stride as u64)).min(last_vpn);
                continue;
            }
            let s = (vpn * page).max(va.0);
            let e = ((vpn + 1) * page).min(end);
            let addr = VirtAddr(s);
            let chunk = &mut buf[..(e - s) as usize];
            if let Some(pte) = self.translate(addr) {
                self.pm.read(pte.frame, addr.page_off(), chunk);
            } else {
                chunk.fill(0);
            }
            // Word-at-a-time fold: the digest is only ever compared for
            // equality against digests from this same function at the
            // same stride, so the wider mixing step is free to differ
            // from byte-FNV — and it keeps the per-admission sampling
            // cost off the service's host-time profile.
            let mut words = chunk.chunks_exact(8);
            for w in words.by_ref() {
                h = (h ^ u64::from_le_bytes(w.try_into().unwrap())).wrapping_mul(PRIME);
            }
            for &b in words.remainder() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
            if stride == 0 {
                // Head/tail only: jump from the head straight to the tail.
                if vpn == last_vpn {
                    break;
                }
                vpn = last_vpn;
            } else {
                vpn += 1;
            }
        }
        h
    }

    /// Resolves one page for an access, faulting as needed.
    ///
    /// Returns the backing frame and the work done (for cost charging).
    pub fn resolve(&self, va: VirtAddr, write: bool) -> Result<(FrameId, FaultWork), MemError> {
        if va.0 >= KERNEL_BASE {
            return Err(MemError::Segv(va));
        }
        let mut work = FaultWork {
            walks: 1,
            ..FaultWork::default()
        };
        let vma = self.vma_for(va).ok_or(MemError::Segv(va))?;
        if write && !vma.prot.write || !write && !vma.prot.read {
            return Err(MemError::Segv(va));
        }
        let vpn = va.vpn();
        let existing = self.pt.borrow().get(&vpn).copied();
        let frame = match existing {
            None => {
                // Demand-zero fault.
                let frame = self.pm.alloc()?;
                self.pt.borrow_mut().insert(
                    vpn,
                    Pte {
                        frame,
                        writable: vma.prot.write,
                        cow: false,
                    },
                );
                work.demand_zero += 1;
                self.bump();
                frame
            }
            Some(pte) if write && !pte.writable => {
                if !pte.cow {
                    return Err(MemError::Segv(va));
                }
                if self.pm.refcount(pte.frame) == 1 {
                    // Sole owner: just restore write permission.
                    self.pt.borrow_mut().insert(
                        vpn,
                        Pte {
                            frame: pte.frame,
                            writable: true,
                            cow: false,
                        },
                    );
                    work.cow_remap += 1;
                    self.bump();
                    pte.frame
                } else {
                    // Break CoW: allocate, copy, swing the PTE.
                    let new = self.pm.alloc()?;
                    work.bytes_copied += self.pm.copy_frame(new, pte.frame);
                    self.pm.decref(pte.frame);
                    self.pt.borrow_mut().insert(
                        vpn,
                        Pte {
                            frame: new,
                            writable: true,
                            cow: false,
                        },
                    );
                    work.cow_copy += 1;
                    self.bump();
                    new
                }
            }
            Some(pte) => pte.frame,
        };
        self.stats.borrow_mut().add(work);
        Ok((frame, work))
    }

    /// Resolves a whole range (Copier's proactive fault handling, §4.5.4),
    /// pinning every page. Returns the pinned frames in order and the total
    /// fault work. On error nothing stays pinned.
    pub fn resolve_and_pin_range(
        &self,
        va: VirtAddr,
        len: usize,
        write: bool,
    ) -> Result<(Vec<FrameId>, FaultWork), MemError> {
        if len == 0 {
            return Err(MemError::BadRange);
        }
        let first = va.vpn();
        let last = VirtAddr(va.0 + (len - 1) as u64).vpn();
        let mut frames = Vec::with_capacity((last - first + 1) as usize);
        let mut work = FaultWork::default();
        for p in first..=last {
            match self.resolve(VirtAddr(p * PAGE_SIZE as u64), write) {
                Ok((f, w)) => {
                    self.pm.pin(f);
                    frames.push(f);
                    work.add(w);
                }
                Err(e) => {
                    for f in frames {
                        self.pm.unpin(f);
                    }
                    return Err(e);
                }
            }
        }
        Ok((frames, work))
    }

    /// Unpins frames previously pinned by [`Self::resolve_and_pin_range`].
    pub fn unpin_frames(&self, frames: &[FrameId]) {
        for &f in frames {
            self.pm.unpin(f);
        }
    }

    /// Batched translation: resolves `[va, va+len)` in one page-table walk
    /// and emits maximal physically contiguous [`Extent`]s directly.
    ///
    /// Semantically identical to calling [`Self::resolve`] per page and
    /// then [`Self::extents`] — same faults taken in the same order, same
    /// per-page [`FaultWork`] accounting into `fault_stats`, same errors at
    /// the same page — but the page table is borrowed once for the whole
    /// range and the VMA is looked up once per VMA run instead of once per
    /// page. This is the gather-path fast path (§4.5.4: the service
    /// resolves whole transfer ranges up front); the per-page originals are
    /// kept as the reference implementation for differential tests.
    ///
    /// Host-only optimization: the returned `FaultWork` is what callers
    /// charge virtual time from, and it is byte-identical to the per-page
    /// path's.
    pub fn resolve_range(
        &self,
        va: VirtAddr,
        len: usize,
        write: bool,
    ) -> Result<(Vec<Extent>, FaultWork), MemError> {
        if len == 0 {
            return Err(MemError::BadRange);
        }
        let first = va.vpn();
        let last = VirtAddr(va.0 + (len - 1) as u64).vpn();
        if let Some(r) = self.resolve_range_settled(va, len, write, first, last) {
            return Ok(r);
        }
        let mut out: Vec<Extent> = Vec::new();
        let mut total = FaultWork::default();
        // One borrow for the whole walk. The allocator, VMA map, and fault
        // stats live in their own cells, so faulting under this borrow is
        // fine; nothing below re-enters the page table.
        let mut pt = self.pt.borrow_mut();
        let mut cached: Option<Vma> = None;
        let mut remaining = len;
        for p in first..=last {
            let page_va = VirtAddr(p * PAGE_SIZE as u64);
            if page_va.0 >= KERNEL_BASE {
                return Err(MemError::Segv(page_va));
            }
            let mut work = FaultWork {
                walks: 1,
                ..FaultWork::default()
            };
            // VMAs are disjoint, so the cached one stays authoritative for
            // every consecutive page below its end.
            if cached.as_ref().is_none_or(|v| page_va.0 >= v.end) {
                cached = Some(self.vma_for(page_va).ok_or(MemError::Segv(page_va))?);
            }
            let vma = cached.as_ref().unwrap();
            if write && !vma.prot.write || !write && !vma.prot.read {
                return Err(MemError::Segv(page_va));
            }
            let frame = match pt.get(&p).copied() {
                None => {
                    // Demand-zero fault.
                    let frame = self.pm.alloc()?;
                    pt.insert(
                        p,
                        Pte {
                            frame,
                            writable: vma.prot.write,
                            cow: false,
                        },
                    );
                    work.demand_zero += 1;
                    self.bump();
                    frame
                }
                Some(pte) if write && !pte.writable => {
                    if !pte.cow {
                        return Err(MemError::Segv(page_va));
                    }
                    if self.pm.refcount(pte.frame) == 1 {
                        // Sole owner: just restore write permission.
                        pt.insert(
                            p,
                            Pte {
                                frame: pte.frame,
                                writable: true,
                                cow: false,
                            },
                        );
                        work.cow_remap += 1;
                        self.bump();
                        pte.frame
                    } else {
                        // Break CoW: allocate, copy, swing the PTE.
                        let new = self.pm.alloc()?;
                        work.bytes_copied += self.pm.copy_frame(new, pte.frame);
                        self.pm.decref(pte.frame);
                        pt.insert(
                            p,
                            Pte {
                                frame: new,
                                writable: true,
                                cow: false,
                            },
                        );
                        work.cow_copy += 1;
                        self.bump();
                        new
                    }
                }
                Some(pte) => pte.frame,
            };
            self.stats.borrow_mut().add(work);
            total.add(work);
            let off = if p == first { va.page_off() } else { 0 };
            let take = remaining.min(PAGE_SIZE - off);
            match out.last_mut() {
                Some(last_e)
                    if off == 0
                        && last_e.frame.0 as usize
                            + (last_e.off + last_e.len).div_ceil(PAGE_SIZE)
                            == frame.0 as usize
                        && (last_e.off + last_e.len) % PAGE_SIZE == 0 =>
                {
                    last_e.len += take;
                }
                _ => out.push(Extent {
                    frame,
                    off,
                    len: take,
                }),
            }
            remaining -= take;
        }
        Ok((out, total))
    }

    /// Steady-state fast pass for [`Self::resolve_range`]: when every page
    /// of the range is already mapped with sufficient permissions (the
    /// common case once a transfer region is warm), the whole range
    /// translates with one ordered page-table scan instead of a map lookup
    /// per page, and no faulting machinery runs. Accounting is identical to
    /// the per-page walk — one `walks` unit per page — added to
    /// `fault_stats` in a single batch, which is observationally equivalent
    /// because nothing reads the stats mid-call. Returns `None` (having
    /// mutated nothing) whenever any page needs the faulting slow path.
    fn resolve_range_settled(
        &self,
        va: VirtAddr,
        len: usize,
        write: bool,
        first: u64,
        last: u64,
    ) -> Option<(Vec<Extent>, FaultWork)> {
        if last * PAGE_SIZE as u64 >= KERNEL_BASE {
            return None;
        }
        // Every page must sit in a VMA granting the access. VMAs are
        // disjoint, so hop by VMA run rather than by page.
        {
            let vmas = self.vmas.borrow();
            let mut p = first;
            while p <= last {
                let page_va = p * PAGE_SIZE as u64;
                let (_, vma) = vmas.range(..=page_va).next_back()?;
                if page_va >= vma.end || (write && !vma.prot.write) || (!write && !vma.prot.read) {
                    return None;
                }
                p = vma.end.div_ceil(PAGE_SIZE as u64);
            }
        }
        let pt = self.pt.borrow();
        let pages = (last - first + 1) as usize;
        let mut out: Vec<Extent> = Vec::new();
        let mut expected = first;
        let mut remaining = len;
        for (&vpn, pte) in pt.range(first..=last) {
            if vpn != expected || (write && !pte.writable) {
                return None;
            }
            expected += 1;
            let off = if vpn == first { va.page_off() } else { 0 };
            let take = remaining.min(PAGE_SIZE - off);
            match out.last_mut() {
                Some(last_e)
                    if off == 0
                        && last_e.frame.0 as usize
                            + (last_e.off + last_e.len).div_ceil(PAGE_SIZE)
                            == pte.frame.0 as usize
                        && (last_e.off + last_e.len) % PAGE_SIZE == 0 =>
                {
                    last_e.len += take;
                }
                _ => out.push(Extent {
                    frame: pte.frame,
                    off,
                    len: take,
                }),
            }
            remaining -= take;
        }
        if (expected - first) as usize != pages {
            return None; // hole after the last present entry
        }
        let total = FaultWork {
            walks: pages as u32,
            ..FaultWork::default()
        };
        self.stats.borrow_mut().add(total);
        Some((out, total))
    }

    /// Gather-path front end: [`Self::resolve_range`] plus pinning every
    /// spanned frame. Returns the extents, the pinned frames in address
    /// order (for later [`Self::unpin_frames`]), and the fault work. On
    /// error nothing stays pinned.
    pub fn resolve_and_pin_range_extents(
        &self,
        va: VirtAddr,
        len: usize,
        write: bool,
    ) -> Result<(Vec<Extent>, Vec<FrameId>, FaultWork), MemError> {
        let (extents, work) = self.resolve_range(va, len, write)?;
        let frames = frames_of(&extents);
        for &f in &frames {
            self.pm.pin(f);
        }
        Ok((extents, frames, work))
    }

    /// The physically contiguous extents backing `[va, va+len)`.
    ///
    /// All pages must already be resolved (use
    /// [`Self::resolve_and_pin_range`] first); this is a pure read of the
    /// page table, as the dispatcher's subtask splitter requires.
    pub fn extents(&self, va: VirtAddr, len: usize) -> Result<Vec<Extent>, MemError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let pt = self.pt.borrow();
        let mut out: Vec<Extent> = Vec::new();
        let mut remaining = len;
        let mut cur = va;
        while remaining > 0 {
            let pte = pt.get(&cur.vpn()).ok_or(MemError::Segv(cur))?;
            let off = cur.page_off();
            let take = remaining.min(PAGE_SIZE - off);
            match out.last_mut() {
                Some(last)
                    if off == 0
                        && last.frame.0 as usize + (last.off + last.len).div_ceil(PAGE_SIZE)
                            == pte.frame.0 as usize
                        && (last.off + last.len) % PAGE_SIZE == 0 =>
                {
                    last.len += take;
                }
                _ => out.push(Extent {
                    frame: pte.frame,
                    off,
                    len: take,
                }),
            }
            remaining -= take;
            cur = cur.add(take);
        }
        Ok(out)
    }

    /// Reads bytes at `va` (faulting pages in as needed).
    pub fn read_bytes(&self, va: VirtAddr, buf: &mut [u8]) -> Result<FaultWork, MemError> {
        let mut work = FaultWork::default();
        let mut done = 0;
        while done < buf.len() {
            let cur = va.add(done);
            let (frame, w) = self.resolve(cur, false)?;
            work.add(w);
            let off = cur.page_off();
            let take = (buf.len() - done).min(PAGE_SIZE - off);
            self.pm.read(frame, off, &mut buf[done..done + take]);
            done += take;
        }
        Ok(work)
    }

    /// Writes bytes at `va` (faulting / breaking CoW as needed).
    pub fn write_bytes(&self, va: VirtAddr, buf: &[u8]) -> Result<FaultWork, MemError> {
        let mut work = FaultWork::default();
        let mut done = 0;
        while done < buf.len() {
            let cur = va.add(done);
            let (frame, w) = self.resolve(cur, true)?;
            work.add(w);
            let off = cur.page_off();
            let take = (buf.len() - done).min(PAGE_SIZE - off);
            self.pm.write(frame, off, &buf[done..done + take]);
            done += take;
        }
        Ok(work)
    }

    /// Clones this space with CoW semantics (fork).
    ///
    /// Private pages in both parent and child become read-only CoW; shared
    /// mappings stay shared and writable.
    pub fn fork(&self, child_id: AsId) -> Result<Rc<AddressSpace>, MemError> {
        let child = AddressSpace::new(child_id, Rc::clone(&self.pm));
        *child.vmas.borrow_mut() = self.vmas.borrow().clone();
        child.next_va.set(self.next_va.get());
        let mut parent_pt = self.pt.borrow_mut();
        let mut child_pt = child.pt.borrow_mut();
        // Shared VMAs keep their PTEs; private ones flip to CoW.
        let vmas = self.vmas.borrow();
        for (&vpn, pte) in parent_pt.iter_mut() {
            let va = VirtAddr(vpn * PAGE_SIZE as u64);
            let shared = vmas
                .range(..=va.0)
                .next_back()
                .map(|(_, v)| v.shared)
                .unwrap_or(false);
            self.pm.incref(pte.frame);
            if shared {
                child_pt.insert(vpn, *pte);
            } else {
                pte.writable = false;
                pte.cow = true;
                child_pt.insert(vpn, *pte);
            }
        }
        drop(child_pt);
        drop(parent_pt);
        drop(vmas);
        self.bump();
        child.bump();
        Ok(child)
    }

    /// Aliases `pages` pages from `src` at `src_va` into this space at a
    /// fresh VA, CoW-protected on both sides. This is the remapping
    /// primitive zIO and zero-copy rely on; both addresses must be
    /// page-aligned (their documented limitation).
    pub fn alias_from(
        &self,
        src: &AddressSpace,
        src_va: VirtAddr,
        pages: usize,
    ) -> Result<VirtAddr, MemError> {
        if !src_va.is_page_aligned() || pages == 0 {
            return Err(MemError::BadRange);
        }
        let va = self.alloc_va(pages * PAGE_SIZE);
        self.vmas.borrow_mut().insert(
            va.0,
            Vma {
                end: va.0 + (pages * PAGE_SIZE) as u64,
                prot: Prot::RW,
                shared: false,
            },
        );
        let mut src_pt = src.pt.borrow_mut();
        let mut dst_pt = self.pt.borrow_mut();
        for p in 0..pages as u64 {
            let spte = src_pt
                .get_mut(&(src_va.vpn() + p))
                .ok_or(MemError::Segv(src_va))?;
            self.pm.incref(spte.frame);
            spte.writable = false;
            spte.cow = true;
            dst_pt.insert(
                va.vpn() + p,
                Pte {
                    frame: spte.frame,
                    writable: false,
                    cow: true,
                },
            );
        }
        drop(dst_pt);
        drop(src_pt);
        self.bump();
        src.bump();
        Ok(va)
    }

    /// Remaps `pages` pages of this space at `dst_va` to alias `src`'s
    /// pages at `src_va`, CoW-protected on both sides (zIO's in-place
    /// copy elision). Both addresses must be page-aligned and `dst_va`
    /// must lie inside an existing writable VMA. Old destination frames
    /// are released; pinned destination frames refuse the remap.
    pub fn alias_at(
        &self,
        dst_va: VirtAddr,
        src: &AddressSpace,
        src_va: VirtAddr,
        pages: usize,
    ) -> Result<(), MemError> {
        if !dst_va.is_page_aligned() || !src_va.is_page_aligned() || pages == 0 {
            return Err(MemError::BadRange);
        }
        let vma = self.vma_for(dst_va).ok_or(MemError::Segv(dst_va))?;
        if !vma.prot.write || dst_va.0 + (pages * PAGE_SIZE) as u64 > vma.end {
            return Err(MemError::Segv(dst_va));
        }
        // Refuse when an in-flight copy has the destination locked.
        {
            let pt = self.pt.borrow();
            for p in 0..pages as u64 {
                if let Some(pte) = pt.get(&(dst_va.vpn() + p)) {
                    if self.pm.is_pinned(pte.frame) {
                        return Err(MemError::Pinned(VirtAddr(
                            (dst_va.vpn() + p) * PAGE_SIZE as u64,
                        )));
                    }
                }
            }
        }
        let same_space = std::ptr::eq(self, src);
        if same_space {
            let mut pt = self.pt.borrow_mut();
            for p in 0..pages as u64 {
                let spte = *pt.get(&(src_va.vpn() + p)).ok_or(MemError::Segv(src_va))?;
                self.pm.incref(spte.frame);
                pt.insert(
                    src_va.vpn() + p,
                    Pte {
                        writable: false,
                        cow: true,
                        ..spte
                    },
                );
                if let Some(old) = pt.insert(
                    dst_va.vpn() + p,
                    Pte {
                        frame: spte.frame,
                        writable: false,
                        cow: true,
                    },
                ) {
                    self.pm.decref(old.frame);
                }
            }
        } else {
            let mut dst_pt = self.pt.borrow_mut();
            let mut src_pt = src.pt.borrow_mut();
            for p in 0..pages as u64 {
                let spte = src_pt
                    .get_mut(&(src_va.vpn() + p))
                    .ok_or(MemError::Segv(src_va))?;
                self.pm.incref(spte.frame);
                spte.writable = false;
                spte.cow = true;
                let new = Pte {
                    frame: spte.frame,
                    writable: false,
                    cow: true,
                };
                if let Some(old) = dst_pt.insert(dst_va.vpn() + p, new) {
                    self.pm.decref(old.frame);
                }
            }
        }
        if !same_space {
            src.bump();
        }
        self.bump();
        Ok(())
    }

    /// Replaces the PTE for `va`'s page (CoW handler integration: Copier
    /// copies into a new frame first, then the handler swings the PTE).
    pub fn set_pte(&self, va: VirtAddr, pte: Pte) {
        let old = self.pt.borrow_mut().insert(va.vpn(), pte);
        if let Some(o) = old {
            if o.frame != pte.frame {
                self.pm.decref(o.frame);
            }
        }
        self.bump();
    }

    /// Total mapped pages (diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pt.borrow().len()
    }
}

impl Drop for AddressSpace {
    fn drop(&mut self) {
        // Release every mapped frame so pools can be reused across phases.
        let pt = self.pt.borrow();
        for pte in pt.values() {
            self.pm.decref(pte.frame);
        }
    }
}

/// Every frame spanned by the extents, in order. Extents are normalized
/// (`off < PAGE_SIZE`), so an extent spans `(off+len)/4KiB` rounded-up
/// frames starting at its base frame.
pub fn frames_of(extents: &[Extent]) -> Vec<FrameId> {
    let mut out = Vec::new();
    for e in extents {
        debug_assert!(e.off < PAGE_SIZE);
        let pages = (e.off + e.len).div_ceil(PAGE_SIZE);
        for p in 0..pages {
            out.push(FrameId(e.frame.0 + p as u32));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::AllocPolicy;

    fn setup(frames: usize, policy: AllocPolicy) -> (Rc<PhysMem>, Rc<AddressSpace>) {
        let pm = Rc::new(PhysMem::new(frames, policy));
        let asp = AddressSpace::new(1, Rc::clone(&pm));
        (pm, asp)
    }

    #[test]
    fn demand_zero_faults_on_first_touch() {
        let (_, asp) = setup(16, AllocPolicy::Sequential);
        let va = asp.mmap(2 * PAGE_SIZE, Prot::RW, false).unwrap();
        assert!(asp.translate(va).is_none());
        let mut buf = [0u8; 4];
        let w = asp.read_bytes(va, &mut buf).unwrap();
        assert_eq!(w.demand_zero, 1);
        assert_eq!(buf, [0; 4]);
        assert!(asp.translate(va).is_some());
    }

    #[test]
    fn populate_backs_eagerly() {
        let (pm, asp) = setup(16, AllocPolicy::Sequential);
        let va = asp.mmap(3 * PAGE_SIZE, Prot::RW, true).unwrap();
        assert_eq!(pm.allocated(), 3);
        let w = asp.write_bytes(va, &[1, 2, 3]).unwrap();
        assert!(!w.faulted());
    }

    #[test]
    fn write_roundtrip_across_pages() {
        let (_, asp) = setup(16, AllocPolicy::Scattered);
        let va = asp.mmap(3 * PAGE_SIZE, Prot::RW, false).unwrap();
        let data: Vec<u8> = (0..2 * PAGE_SIZE + 100).map(|i| (i % 251) as u8).collect();
        asp.write_bytes(va.add(50), &data).unwrap();
        let mut out = vec![0u8; data.len()];
        asp.read_bytes(va.add(50), &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn digest_stride_controls_mid_extent_coverage() {
        let (_, asp) = setup(32, AllocPolicy::Sequential);
        let pages = 8;
        let va = asp.mmap(pages * PAGE_SIZE, Prot::RW, true).unwrap();
        let data: Vec<u8> = (0..pages * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        asp.write_bytes(va, &data).unwrap();
        let len = data.len();

        let head_tail = asp.extent_digest(va, len);
        assert_eq!(
            head_tail,
            asp.extent_digest_stride(va, len, 0),
            "stride 0 is the legacy head/tail digest"
        );
        let full = asp.extent_digest_stride(va, len, 1);
        let sparse = asp.extent_digest_stride(va, len, 3);

        // Flip one byte in the dead middle of the extent.
        let mid = VirtAddr(va.0 + (len / 2) as u64);
        asp.write_bytes(mid, &[0xFF]).unwrap();

        assert_eq!(
            asp.extent_digest(va, len),
            head_tail,
            "head/tail sampling is blind to mid-extent damage"
        );
        assert_ne!(
            asp.extent_digest_stride(va, len, 1),
            full,
            "full stride detects any byte difference"
        );
        // Page 4 of 8 is on the stride-3 lattice's complement — whether
        // stride 3 sees it is fixed by geometry (idx 4 not sampled), so
        // this documents the partial-coverage trade-off.
        assert_eq!(
            asp.extent_digest_stride(va, len, 3),
            sparse,
            "stride 3 skips the damaged interior page here"
        );
        // But damage on a sampled lattice page is caught.
        asp.write_bytes(VirtAddr(va.0 + 3 * PAGE_SIZE as u64), &[0xEE])
            .unwrap();
        assert_ne!(asp.extent_digest_stride(va, len, 3), sparse);

        // Sub-page extents agree across all strides (same single chunk).
        let small = asp.extent_digest(va, 100);
        assert_eq!(asp.extent_digest_stride(va, 100, 1), small);
        assert_eq!(asp.extent_digest_stride(va, 100, 7), small);
    }

    #[test]
    fn segv_outside_vma_and_on_protection() {
        let (_, asp) = setup(16, AllocPolicy::Sequential);
        let mut buf = [0u8; 1];
        assert!(matches!(
            asp.read_bytes(VirtAddr(0x500), &mut buf),
            Err(MemError::Segv(_))
        ));
        let ro = asp.mmap(PAGE_SIZE, Prot::RO, true).unwrap();
        assert!(matches!(asp.write_bytes(ro, &[1]), Err(MemError::Segv(_))));
        assert!(matches!(
            asp.read_bytes(VirtAddr(KERNEL_BASE + 8), &mut buf),
            Err(MemError::Segv(_))
        ));
    }

    #[test]
    fn fork_cow_preserves_isolation() {
        let (pm, parent) = setup(32, AllocPolicy::Sequential);
        let va = parent.mmap(2 * PAGE_SIZE, Prot::RW, false).unwrap();
        parent.write_bytes(va, b"parent data").unwrap();
        let child = parent.fork(2).unwrap();

        // Child sees parent's data without copying yet.
        let mut buf = [0u8; 11];
        child.read_bytes(va, &mut buf).unwrap();
        assert_eq!(&buf, b"parent data");
        let before = pm.allocated();

        // Child write breaks CoW with a real copy.
        let w = child.write_bytes(va, b"child!").unwrap();
        assert_eq!(w.cow_copy, 1);
        assert_eq!(w.bytes_copied, PAGE_SIZE);
        assert_eq!(pm.allocated(), before + 1);

        parent.read_bytes(va, &mut buf).unwrap();
        assert_eq!(&buf, b"parent data");
        child.read_bytes(va, &mut buf).unwrap();
        assert_eq!(&buf[..6], b"child!");
    }

    #[test]
    fn cow_sole_owner_remaps_without_copy() {
        let (_, parent) = setup(32, AllocPolicy::Sequential);
        let va = parent.mmap(PAGE_SIZE, Prot::RW, false).unwrap();
        parent.write_bytes(va, b"x").unwrap();
        let child = parent.fork(2).unwrap();
        // Child writes (copies); then the parent is sole owner of its frame?
        // No — child's write decrefs parent's frame to 1, so the parent's
        // next write is a pure remap.
        child.write_bytes(va, b"c").unwrap();
        let w = parent.write_bytes(va, b"p").unwrap();
        assert_eq!(w.cow_remap, 1);
        assert_eq!(w.cow_copy, 0);
    }

    #[test]
    fn extents_merge_contiguous_frames() {
        let (_, asp) = setup(16, AllocPolicy::Sequential);
        let va = asp.mmap(4 * PAGE_SIZE, Prot::RW, true).unwrap();
        let ex = asp.extents(va.add(100), 2 * PAGE_SIZE).unwrap();
        // Sequential policy → frames contiguous → single extent.
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].off, 100);
        assert_eq!(ex[0].len, 2 * PAGE_SIZE);
    }

    #[test]
    fn extents_split_on_fragmentation() {
        let (_, asp) = setup(64, AllocPolicy::Scattered);
        let va = asp.mmap(4 * PAGE_SIZE, Prot::RW, true).unwrap();
        let ex = asp.extents(va, 4 * PAGE_SIZE).unwrap();
        assert!(ex.len() > 1, "scattered frames should fragment extents");
        let total: usize = ex.iter().map(|e| e.len).sum();
        assert_eq!(total, 4 * PAGE_SIZE);
    }

    #[test]
    fn resolve_range_matches_per_page_path() {
        // Two identically seeded spaces: one walked per page, one batched.
        let build = |policy| {
            let (pm, asp) = setup(64, policy);
            let va = asp.mmap(6 * PAGE_SIZE, Prot::RW, false).unwrap();
            asp.write_bytes(va, b"warm first two pages and a bit")
                .unwrap();
            asp.write_bytes(va.add(PAGE_SIZE + 7), b"x").unwrap();
            (pm, asp, va)
        };
        for policy in [AllocPolicy::Sequential, AllocPolicy::Scattered] {
            let (_, a, va) = build(policy);
            let (_, b, _) = build(policy);
            let range = (va.add(123), 4 * PAGE_SIZE + 500);

            let (ref_frames, ref_work) = a.resolve_and_pin_range(range.0, range.1, true).unwrap();
            a.unpin_frames(&ref_frames);
            let ref_ex = a.extents(range.0, range.1).unwrap();

            let (ex, work) = b.resolve_range(range.0, range.1, true).unwrap();
            assert_eq!(ex, ref_ex);
            assert_eq!(work, ref_work);
            assert_eq!(frames_of(&ex), ref_frames);
            assert_eq!(a.fault_stats(), b.fault_stats());
        }
    }

    #[test]
    fn resolve_range_breaks_cow_like_per_page() {
        let (pm, parent) = setup(64, AllocPolicy::Sequential);
        let va = parent.mmap(3 * PAGE_SIZE, Prot::RW, true).unwrap();
        parent.write_bytes(va, b"shared").unwrap();
        let child = parent.fork(2).unwrap();
        let before = pm.allocated();
        let (ex, work) = child.resolve_range(va, 3 * PAGE_SIZE, true).unwrap();
        assert_eq!(work.cow_copy, 3);
        assert_eq!(work.bytes_copied, 3 * PAGE_SIZE);
        assert_eq!(pm.allocated(), before + 3);
        assert_eq!(ex.iter().map(|e| e.len).sum::<usize>(), 3 * PAGE_SIZE);
        // Parent data is intact and the child now owns private frames.
        let mut buf = [0u8; 6];
        parent.read_bytes(va, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
    }

    #[test]
    fn resolve_range_errors_match_and_pin_variant_unwinds() {
        let (pm, asp) = setup(64, AllocPolicy::Sequential);
        let ro = asp.mmap(2 * PAGE_SIZE, Prot::RO, true).unwrap();
        assert!(matches!(
            asp.resolve_range(ro, 2 * PAGE_SIZE, true),
            Err(MemError::Segv(_))
        ));
        assert!(matches!(
            asp.resolve_range(ro, 0, false),
            Err(MemError::BadRange)
        ));
        // A range running off the end of the VMA fails on the page past it
        // and leaves nothing pinned.
        let rw = asp.mmap(2 * PAGE_SIZE, Prot::RW, false).unwrap();
        assert!(matches!(
            asp.resolve_and_pin_range_extents(rw, 3 * PAGE_SIZE, true),
            Err(MemError::Segv(_))
        ));
        assert_eq!(pm.pinned_frames(), 0);
    }

    #[test]
    fn resolve_and_pin_blocks_munmap() {
        let (_, asp) = setup(16, AllocPolicy::Sequential);
        let va = asp.mmap(2 * PAGE_SIZE, Prot::RW, false).unwrap();
        let (frames, work) = asp.resolve_and_pin_range(va, 2 * PAGE_SIZE, true).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(work.demand_zero, 2);
        assert!(matches!(
            asp.munmap(va, 2 * PAGE_SIZE),
            Err(MemError::Pinned(_))
        ));
        asp.unpin_frames(&frames);
        asp.munmap(va, 2 * PAGE_SIZE).unwrap();
    }

    #[test]
    fn pin_failure_unwinds_partial_pins() {
        let (pm, asp) = setup(16, AllocPolicy::Sequential);
        let va = asp.mmap(PAGE_SIZE, Prot::RW, false).unwrap();
        // Range extends past the VMA: second page SEGVs.
        let err = asp.resolve_and_pin_range(va, 2 * PAGE_SIZE, true);
        assert!(matches!(err, Err(MemError::Segv(_))));
        // The first page's frame must not be left pinned.
        let (frames, _) = asp.resolve_and_pin_range(va, PAGE_SIZE, true).unwrap();
        assert_eq!(pm.refcount(frames[0]), 1);
        asp.unpin_frames(&frames);
        asp.munmap(va, PAGE_SIZE).unwrap();
    }

    #[test]
    fn generation_bumps_on_mapping_changes() {
        let (_, asp) = setup(16, AllocPolicy::Sequential);
        let g0 = asp.generation();
        let va = asp.mmap(PAGE_SIZE, Prot::RW, false).unwrap();
        assert!(asp.generation() > g0);
        let g1 = asp.generation();
        asp.write_bytes(va, &[1]).unwrap(); // demand-zero fault remaps
        assert!(asp.generation() > g1);
        let g2 = asp.generation();
        let mut buf = [0u8; 1];
        asp.read_bytes(va, &mut buf).unwrap(); // plain hit: no bump
        assert_eq!(asp.generation(), g2);
    }

    #[test]
    fn shared_mapping_survives_fork_writable() {
        let (pm, parent) = setup(16, AllocPolicy::Sequential);
        let frames = vec![pm.alloc().unwrap()];
        let va = parent.map_shared(&frames, Prot::RW).unwrap();
        let child = parent.fork(2).unwrap();
        child.write_bytes(va, b"shared!").unwrap();
        let mut buf = [0u8; 7];
        parent.read_bytes(va, &mut buf).unwrap();
        assert_eq!(&buf, b"shared!");
        pm.decref(frames[0]);
    }

    #[test]
    fn alias_from_requires_alignment_and_cows_both_sides() {
        let (_, a) = setup(32, AllocPolicy::Sequential);
        let b = AddressSpace::new(2, Rc::clone(a.phys()));
        let src = a.mmap(2 * PAGE_SIZE, Prot::RW, true).unwrap();
        a.write_bytes(src, b"zio source").unwrap();

        assert!(matches!(
            b.alias_from(&a, src.add(1), 1),
            Err(MemError::BadRange)
        ));

        let dst = b.alias_from(&a, src, 2).unwrap();
        let mut buf = [0u8; 10];
        b.read_bytes(dst, &mut buf).unwrap();
        assert_eq!(&buf, b"zio source");

        // Writer on either side triggers a CoW copy, isolating the two.
        let w = a.write_bytes(src, b"SRC").unwrap();
        assert_eq!(w.cow_copy, 1);
        b.read_bytes(dst, &mut buf).unwrap();
        assert_eq!(&buf, b"zio source");
    }

    #[test]
    fn drop_releases_frames() {
        let (pm, asp) = setup(16, AllocPolicy::Sequential);
        let _va = asp.mmap(4 * PAGE_SIZE, Prot::RW, true).unwrap();
        assert_eq!(pm.allocated(), 4);
        drop(asp);
        assert_eq!(pm.allocated(), 0);
    }
}

#[cfg(test)]
mod alias_at_tests {
    use super::*;
    use crate::phys::AllocPolicy;

    #[test]
    fn alias_at_same_space_elides_copy_until_write() {
        let pm = Rc::new(PhysMem::new(32, AllocPolicy::Sequential));
        let asp = AddressSpace::new(1, Rc::clone(&pm));
        let src = asp.mmap(2 * PAGE_SIZE, Prot::RW, true).unwrap();
        let dst = asp.mmap(2 * PAGE_SIZE, Prot::RW, true).unwrap();
        asp.write_bytes(src, b"aliased payload").unwrap();
        let before = pm.allocated();
        asp.alias_at(dst, &asp, src, 2).unwrap();
        // The old destination frames were released; no copy happened.
        assert_eq!(pm.allocated(), before - 2);
        let mut buf = [0u8; 15];
        asp.read_bytes(dst, &mut buf).unwrap();
        assert_eq!(&buf, b"aliased payload");
        // A write on either side breaks CoW with a real copy.
        let w = asp.write_bytes(dst, b"X").unwrap();
        assert_eq!(w.cow_copy, 1);
        asp.read_bytes(src, &mut buf).unwrap();
        assert_eq!(&buf, b"aliased payload");
    }

    #[test]
    fn alias_at_rejects_unaligned_and_pinned() {
        let pm = Rc::new(PhysMem::new(32, AllocPolicy::Sequential));
        let asp = AddressSpace::new(1, Rc::clone(&pm));
        let src = asp.mmap(PAGE_SIZE, Prot::RW, true).unwrap();
        let dst = asp.mmap(PAGE_SIZE, Prot::RW, true).unwrap();
        assert!(matches!(
            asp.alias_at(dst.add(1), &asp, src, 1),
            Err(MemError::BadRange)
        ));
        let (frames, _) = asp.resolve_and_pin_range(dst, PAGE_SIZE, true).unwrap();
        assert!(matches!(
            asp.alias_at(dst, &asp, src, 1),
            Err(MemError::Pinned(_))
        ));
        asp.unpin_frames(&frames);
        asp.alias_at(dst, &asp, src, 1).unwrap();
    }
}
