//! # copier-mem — simulated kernel memory subsystem
//!
//! The memory substrate Copier coordinates with (paper §4.5.4): physical
//! frames with refcounts and pins, per-process address spaces with VMAs and
//! page tables, demand-zero paging, copy-on-write with `fork`, page
//! aliasing (the primitive behind zIO and zero-copy send), and a
//! translation *generation* used by the ATCache for invalidation.
//!
//! Everything moves real bytes; only time is modeled (by callers charging
//! costs from `copier-hw`).

pub mod phys;
pub mod space;

pub use phys::{AllocPolicy, FrameId, PhysError, PhysMem, PAGE_SIZE};
pub use space::{
    frames_of, AddressSpace, AsId, Extent, FaultWork, MemError, Prot, Pte, VirtAddr, KERNEL_BASE,
    USER_BASE,
};
