//! Simulated physical memory: a pool of 4 KiB frames with real backing data.
//!
//! Frames are identified by [`FrameId`]; two frames are *physically
//! contiguous* iff their ids are consecutive — the property the DMA engine
//! requires of its transfers (§4.3 of the paper). The allocator can hand out
//! deliberately scattered frames so that the dispatcher's subtask splitting
//! is exercised on realistic fragmented layouts.
//!
//! All frame data is real memory: copies through this module genuinely move
//! bytes, so correctness (not just timing) is testable end to end.
//!
//! ## Arena backing
//!
//! The pool's bytes live in one flat *arena* (`frames × 4 KiB`, allocated
//! zeroed once — the host OS commits its pages lazily on first touch), with
//! per-frame bookkeeping in a flat metadata table. Frame `f` occupies arena
//! bytes `[f·4096, (f+1)·4096)`, so a run of physically contiguous frames is
//! a single contiguous arena slice and the batched primitives
//! ([`PhysMem::copy_run`], [`PhysMem::read_run`], [`PhysMem::write_run`])
//! move a whole multi-page run with one borrow and one `memcpy`/`memmove`
//! instead of a cell borrow plus bounds dance per 4 KiB page. The per-page
//! path is kept as [`PhysMem::copy_run_paged`] — the baseline the
//! `fig_hostperf` bench compares against.
//!
//! Only host wall-clock changes: virtual-time costs are charged by callers
//! from byte counts, which the arena leaves untouched.

use std::cell::{Cell, RefCell};

/// Size of one page/frame in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Index of a physical frame. Consecutive ids are physically contiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u32);

/// How the allocator picks frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Pop the lowest free frame — long allocations come out contiguous.
    Sequential,
    /// Hand out frames in a pre-shuffled order — allocations are fragmented,
    /// matching a long-running system (Fig. 7-b "all pages non-contiguous").
    Scattered,
}

/// Flat per-frame metadata; the data itself lives in the shared arena.
struct FrameMeta {
    /// CoW sharing count. 0 = free.
    refcnt: Cell<u16>,
    /// Pin count — a pinned frame's mapping must not be torn down (§4.5.4).
    pins: Cell<u16>,
    /// Whether the frame was ever allocated: its arena bytes may be dirty
    /// and must be re-zeroed on the next allocation (fresh frames read 0).
    touched: Cell<bool>,
}

/// Errors from the physical allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysError {
    /// The pool has too few free frames for the request.
    OutOfMemory,
    /// Enough frames are free, but no run of them is contiguous — a
    /// distinct cause (compaction would help, more memory would not).
    Fragmented,
}

/// A fixed-capacity pool of frames.
pub struct PhysMem {
    /// One allocation backing every frame's bytes.
    arena: RefCell<Box<[u8]>>,
    meta: Vec<FrameMeta>,
    free: RefCell<Vec<FrameId>>,
    policy: Cell<AllocPolicy>,
    allocated: Cell<usize>,
    /// Allocated-frame high watermark: at or above, the pool reports
    /// memory pressure (graceful-degradation signal).
    wmark_high: Cell<usize>,
    /// Low watermark: pressure clears only once allocation falls back to
    /// or below this (hysteresis, so the signal does not flap).
    wmark_low: Cell<usize>,
    /// Latched pressure state.
    pressured: Cell<bool>,
    /// Transitions into the pressured state.
    pressure_events: Cell<u64>,
}

impl PhysMem {
    /// Creates a pool of `frames` frames under the given policy.
    ///
    /// `Scattered` pre-shuffles the free list with a fixed multiplicative
    /// permutation so runs are reproducible.
    pub fn new(frames: usize, policy: AllocPolicy) -> Self {
        assert!(frames > 0 && frames < u32::MAX as usize);
        let meta = (0..frames)
            .map(|_| FrameMeta {
                refcnt: Cell::new(0),
                pins: Cell::new(0),
                touched: Cell::new(false),
            })
            .collect();
        let mut free: Vec<FrameId> = (0..frames as u32).map(FrameId).collect();
        if policy == AllocPolicy::Scattered {
            // Deterministic pseudo-shuffle: iterate with a stride coprime to
            // the frame count, which breaks up almost all contiguity.
            let n = frames as u64;
            let mut stride = (n / 2 + 1) | 1;
            while gcd(stride, n) != 1 {
                stride += 2;
            }
            free = (0..n).map(|i| FrameId(((i * stride) % n) as u32)).collect();
        }
        // Pop from the back; reverse so low ids come out first under Sequential.
        free.reverse();
        PhysMem {
            arena: RefCell::new(vec![0u8; frames * PAGE_SIZE].into_boxed_slice()),
            meta,
            free: RefCell::new(free),
            policy: Cell::new(policy),
            allocated: Cell::new(0),
            // Default watermarks: pressure at 7/8 of the pool, recovery at
            // 3/4 — headroom for pinned in-flight copies without flapping.
            wmark_high: Cell::new(frames - frames / 8),
            wmark_low: Cell::new((frames - frames / 4).min(frames.saturating_sub(1))),
            pressured: Cell::new(false),
            pressure_events: Cell::new(0),
        }
    }

    /// Total frames in the pool.
    pub fn capacity(&self) -> usize {
        self.meta.len()
    }

    /// Frames currently allocated.
    pub fn allocated(&self) -> usize {
        self.allocated.get()
    }

    /// Current allocation policy.
    pub fn policy(&self) -> AllocPolicy {
        self.policy.get()
    }

    /// Allocates one frame with refcount 1. Its contents are zeroed.
    pub fn alloc(&self) -> Result<FrameId, PhysError> {
        let f = self.free.borrow_mut().pop().ok_or(PhysError::OutOfMemory)?;
        let slot = &self.meta[f.0 as usize];
        debug_assert_eq!(slot.refcnt.get(), 0);
        slot.refcnt.set(1);
        // Fresh frames must read as zero; the arena starts zeroed, so only
        // previously used frames pay for re-zeroing.
        if slot.touched.replace(true) {
            let base = f.0 as usize * PAGE_SIZE;
            self.arena.borrow_mut()[base..base + PAGE_SIZE].fill(0);
        }
        self.allocated.set(self.allocated.get() + 1);
        Ok(f)
    }

    /// Allocates `n` physically contiguous frames (refcount 1 each).
    ///
    /// Used for kernel buffers (sk_buffs) and huge-page-like regions. This
    /// scans for a run of free ids, so it succeeds even under `Scattered`.
    pub fn alloc_contiguous(&self, n: usize) -> Result<FrameId, PhysError> {
        assert!(n > 0);
        if n == 1 {
            return self.alloc();
        }
        // Find the lowest run of n free frames.
        let mut run = 0usize;
        let mut start = 0usize;
        let mut found = None;
        for (i, s) in self.meta.iter().enumerate() {
            if s.refcnt.get() == 0 {
                if run == 0 {
                    start = i;
                }
                run += 1;
                if run == n {
                    found = Some(start);
                    break;
                }
            } else {
                run = 0;
            }
        }
        let start = found.ok_or_else(|| {
            if self.free.borrow().len() >= n {
                PhysError::Fragmented
            } else {
                PhysError::OutOfMemory
            }
        })?;
        // Remove the run's ids from the free list.
        self.free
            .borrow_mut()
            .retain(|f| (f.0 as usize) < start || (f.0 as usize) >= start + n);
        let mut arena = self.arena.borrow_mut();
        for i in start..start + n {
            let slot = &self.meta[i];
            slot.refcnt.set(1);
            if slot.touched.replace(true) {
                arena[i * PAGE_SIZE..(i + 1) * PAGE_SIZE].fill(0);
            }
        }
        self.allocated.set(self.allocated.get() + n);
        Ok(FrameId(start as u32))
    }

    /// Increments a frame's share count (CoW fork).
    pub fn incref(&self, f: FrameId) {
        let slot = &self.meta[f.0 as usize];
        assert!(slot.refcnt.get() > 0, "incref of free frame");
        slot.refcnt.set(slot.refcnt.get() + 1);
    }

    /// Decrements the share count, freeing the frame at zero.
    pub fn decref(&self, f: FrameId) {
        let slot = &self.meta[f.0 as usize];
        let rc = slot.refcnt.get();
        assert!(rc > 0, "decref of free frame {f:?}");
        slot.refcnt.set(rc - 1);
        if rc == 1 {
            assert_eq!(slot.pins.get(), 0, "freeing a pinned frame {f:?}");
            self.free.borrow_mut().push(f);
            self.allocated.set(self.allocated.get() - 1);
        }
    }

    /// Current share count of a frame.
    pub fn refcount(&self, f: FrameId) -> u16 {
        self.meta[f.0 as usize].refcnt.get()
    }

    /// Pins a frame (its mapping is locked for an in-flight copy).
    pub fn pin(&self, f: FrameId) {
        let slot = &self.meta[f.0 as usize];
        assert!(slot.refcnt.get() > 0, "pin of free frame");
        slot.pins.set(slot.pins.get() + 1);
    }

    /// Releases one pin.
    pub fn unpin(&self, f: FrameId) {
        let slot = &self.meta[f.0 as usize];
        let p = slot.pins.get();
        assert!(p > 0, "unpin without pin");
        slot.pins.set(p - 1);
    }

    /// Whether the frame is currently pinned.
    pub fn is_pinned(&self, f: FrameId) -> bool {
        self.meta[f.0 as usize].pins.get() > 0
    }

    /// Number of frames with a nonzero pin count (leak detection: after
    /// every in-flight copy settles this must return to zero).
    pub fn pinned_frames(&self) -> usize {
        self.meta.iter().filter(|s| s.pins.get() > 0).count()
    }

    /// Sets the pressure watermarks (allocated-frame counts). Pressure is
    /// raised at `high` and clears only at or below `low` (`low < high`).
    pub fn set_watermarks(&self, low: usize, high: usize) {
        assert!(low < high, "low watermark must sit below high");
        self.wmark_low.set(low);
        self.wmark_high.set(high.min(self.meta.len()));
        // Re-evaluate immediately so a tightened watermark takes effect
        // without waiting for the next allocation.
        self.pressure();
    }

    /// Current watermarks as `(low, high)` allocated-frame counts.
    pub fn watermarks(&self) -> (usize, usize) {
        (self.wmark_low.get(), self.wmark_high.get())
    }

    /// Whether the pool is under memory pressure, with hysteresis: raised
    /// when allocation reaches the high watermark, cleared only once it
    /// falls back to the low watermark. Consumers (the Copier service)
    /// poll this to switch into graceful degradation (§4.6 fallback).
    pub fn pressure(&self) -> bool {
        let a = self.allocated.get();
        if self.pressured.get() {
            if a <= self.wmark_low.get() {
                self.pressured.set(false);
            }
        } else if a >= self.wmark_high.get() {
            self.pressured.set(true);
            self.pressure_events.set(self.pressure_events.get() + 1);
        }
        self.pressured.get()
    }

    /// Times the pool transitioned into the pressured state.
    pub fn pressure_events(&self) -> u64 {
        self.pressure_events.get()
    }

    /// Asserts every frame spanned by `[f·4096 + off, … + len)` is
    /// allocated and the run stays inside the pool.
    fn check_run(&self, f: FrameId, off: usize, len: usize) {
        let first = f.0 as usize + off / PAGE_SIZE;
        let last = f.0 as usize + (off + len - 1) / PAGE_SIZE;
        assert!(last < self.meta.len(), "run past end of pool");
        for i in first..=last {
            assert!(self.meta[i].refcnt.get() > 0, "access to free frame {i}");
        }
    }

    /// Reads from a frame into `buf`.
    ///
    /// # Panics
    /// If the range exceeds the page or the frame is free.
    pub fn read(&self, f: FrameId, off: usize, buf: &mut [u8]) {
        assert!(off + buf.len() <= PAGE_SIZE);
        self.read_run(f, off, buf);
    }

    /// Writes `buf` into a frame.
    pub fn write(&self, f: FrameId, off: usize, buf: &[u8]) {
        assert!(off + buf.len() <= PAGE_SIZE);
        self.write_run(f, off, buf);
    }

    /// Reads a physically contiguous run (may span many frames) into
    /// `buf` with a single arena borrow and one `memcpy`.
    pub fn read_run(&self, f: FrameId, off: usize, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        self.check_run(f, off, buf.len());
        let base = f.0 as usize * PAGE_SIZE + off;
        buf.copy_from_slice(&self.arena.borrow()[base..base + buf.len()]);
    }

    /// Writes `buf` over a physically contiguous run (may span many
    /// frames) with a single arena borrow and one `memcpy`.
    pub fn write_run(&self, f: FrameId, off: usize, buf: &[u8]) {
        if buf.is_empty() {
            return;
        }
        self.check_run(f, off, buf.len());
        let base = f.0 as usize * PAGE_SIZE + off;
        self.arena.borrow_mut()[base..base + buf.len()].copy_from_slice(buf);
    }

    /// Copies bytes between frames — the real data movement behind every
    /// simulated copy.
    ///
    /// Handles the same-frame case (used by intra-page `memmove`) with
    /// `memmove` semantics.
    pub fn copy(&self, dst: FrameId, dst_off: usize, src: FrameId, src_off: usize, len: usize) {
        assert!(dst_off + len <= PAGE_SIZE && src_off + len <= PAGE_SIZE);
        self.copy_run(dst, dst_off, src, src_off, len);
    }

    /// Copies a physically contiguous run of bytes — possibly spanning
    /// many frames — with a single arena borrow and one
    /// `memcpy`/`memmove`. Overlapping source and destination runs get
    /// `memmove` semantics (the destination reads as the source did
    /// before the call), so `amemmove`-style tasks are safe.
    ///
    /// This is the fast-path engine primitive: the caller hands it a
    /// whole contiguous extent pair and the arena moves it in one shot
    /// instead of nibbling per 4 KiB page.
    pub fn copy_run(&self, dst: FrameId, dst_off: usize, src: FrameId, src_off: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.check_run(src, src_off, len);
        self.check_run(dst, dst_off, len);
        let s0 = src.0 as usize * PAGE_SIZE + src_off;
        let d0 = dst.0 as usize * PAGE_SIZE + dst_off;
        if s0 == d0 {
            return;
        }
        let mut arena = self.arena.borrow_mut();
        if s0 + len <= d0 {
            // Disjoint, source below destination: one memcpy.
            let (head, tail) = arena.split_at_mut(d0);
            tail[..len].copy_from_slice(&head[s0..s0 + len]);
        } else if d0 + len <= s0 {
            // Disjoint, destination below source: one memcpy.
            let (head, tail) = arena.split_at_mut(s0);
            head[d0..d0 + len].copy_from_slice(&tail[..len]);
        } else {
            // Overlapping runs: memmove.
            arena.copy_within(s0..s0 + len, d0);
        }
    }

    /// Per-page baseline of [`Self::copy_run`]: identical semantics, but
    /// borrows and copies one page-bounded chunk at a time like the
    /// pre-arena cell-per-frame backing did. Kept callable so
    /// `fig_hostperf` can measure the fast path against it; production
    /// paths never use it.
    pub fn copy_run_paged(
        &self,
        dst: FrameId,
        dst_off: usize,
        src: FrameId,
        src_off: usize,
        len: usize,
    ) {
        if len == 0 {
            return;
        }
        let s0 = src.0 as usize * PAGE_SIZE + src_off;
        let d0 = dst.0 as usize * PAGE_SIZE + dst_off;
        // Chunk at every source or destination page boundary; walk the
        // chunks backwards when the regions overlap with dst above src so
        // not-yet-copied source bytes are never clobbered (memmove tiling).
        let chunk = |d_abs: usize, s_abs: usize, take: usize| {
            self.copy_run(
                FrameId(dst.0 + (d_abs / PAGE_SIZE) as u32),
                d_abs % PAGE_SIZE,
                FrameId(src.0 + (s_abs / PAGE_SIZE) as u32),
                s_abs % PAGE_SIZE,
                take,
            );
        };
        if d0 <= s0 {
            let mut done = 0usize;
            while done < len {
                let (s_abs, d_abs) = (src_off + done, dst_off + done);
                let take = (len - done)
                    .min(PAGE_SIZE - s_abs % PAGE_SIZE)
                    .min(PAGE_SIZE - d_abs % PAGE_SIZE);
                chunk(d_abs, s_abs, take);
                done += take;
            }
        } else {
            // The last forward chunk ends at `rem` and starts at the
            // nearest source or destination page boundary below it, so its
            // length is computable directly — no chunk list needed.
            let mut rem = len;
            while rem > 0 {
                let take = rem
                    .min((src_off + rem - 1) % PAGE_SIZE + 1)
                    .min((dst_off + rem - 1) % PAGE_SIZE + 1);
                rem -= take;
                chunk(dst_off + rem, src_off + rem, take);
            }
        }
    }

    /// Copies a whole frame (CoW break helper). Returns bytes copied.
    pub fn copy_frame(&self, dst: FrameId, src: FrameId) -> usize {
        self.copy(dst, 0, src, 0, PAGE_SIZE);
        PAGE_SIZE
    }

    /// FNV-1a digest over the contents of every *allocated* frame
    /// (frame id folded in first, so identical bytes in different frames
    /// still produce distinct digests). Free frames are excluded: their
    /// arena bytes are reinitialization detail, not system state. Used
    /// by the record/replay layer's memory checkpoints (DESIGN.md §14).
    pub fn digest(&self) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let arena = self.arena.borrow();
        for (i, m) in self.meta.iter().enumerate() {
            if m.refcnt.get() == 0 {
                continue;
            }
            h = (h ^ i as u64).wrapping_mul(PRIME);
            // Word-at-a-time FNV: one multiply per 8 bytes, not per byte —
            // the digest runs at trace checkpoints over every allocated
            // frame, so its cost bounds the record overhead (DESIGN.md
            // §14). PAGE_SIZE is a multiple of 8, so nothing is dropped.
            for w in arena[i * PAGE_SIZE..(i + 1) * PAGE_SIZE].chunks_exact(8) {
                let x = u64::from_le_bytes(w.try_into().unwrap());
                h = (h ^ x).wrapping_mul(PRIME);
            }
        }
        h
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_alloc_is_contiguous() {
        let pm = PhysMem::new(16, AllocPolicy::Sequential);
        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        let c = pm.alloc().unwrap();
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn scattered_alloc_is_fragmented() {
        let pm = PhysMem::new(64, AllocPolicy::Scattered);
        let ids: Vec<u32> = (0..8).map(|_| pm.alloc().unwrap().0).collect();
        let contiguous_pairs = ids.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(contiguous_pairs <= 1, "ids = {ids:?}");
    }

    #[test]
    fn alloc_contiguous_finds_runs() {
        let pm = PhysMem::new(32, AllocPolicy::Scattered);
        let start = pm.alloc_contiguous(8).unwrap();
        // Frames start..start+8 all allocated.
        for i in 0..8 {
            assert_eq!(pm.refcount(FrameId(start.0 + i)), 1);
        }
        assert_eq!(pm.allocated(), 8);
    }

    #[test]
    fn oom_reported() {
        let pm = PhysMem::new(2, AllocPolicy::Sequential);
        pm.alloc().unwrap();
        pm.alloc().unwrap();
        assert_eq!(pm.alloc(), Err(PhysError::OutOfMemory));
        assert_eq!(pm.alloc_contiguous(2), Err(PhysError::OutOfMemory));
    }

    #[test]
    fn fragmentation_distinguished_from_oom() {
        let pm = PhysMem::new(4, AllocPolicy::Sequential);
        let frames: Vec<FrameId> = (0..4).map(|_| pm.alloc().unwrap()).collect();
        // Free alternating frames: 2 free frames, but no contiguous pair.
        pm.decref(frames[0]);
        pm.decref(frames[2]);
        assert_eq!(pm.alloc_contiguous(2), Err(PhysError::Fragmented));
        // Free a neighbor: now a run exists.
        pm.decref(frames[1]);
        assert!(pm.alloc_contiguous(2).is_ok());
    }

    #[test]
    fn fresh_frames_are_zero_even_after_reuse() {
        let pm = PhysMem::new(1, AllocPolicy::Sequential);
        let f = pm.alloc().unwrap();
        pm.write(f, 10, b"dirty");
        pm.decref(f);
        let g = pm.alloc().unwrap();
        assert_eq!(g, f);
        let mut buf = [1u8; 16];
        pm.read(g, 8, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn contiguous_realloc_rezeroes() {
        let pm = PhysMem::new(4, AllocPolicy::Sequential);
        let f = pm.alloc_contiguous(4).unwrap();
        pm.write_run(f, 0, &[0xAB; 4 * PAGE_SIZE]);
        for i in 0..4 {
            pm.decref(FrameId(f.0 + i));
        }
        let g = pm.alloc_contiguous(4).unwrap();
        let mut buf = vec![1u8; 4 * PAGE_SIZE];
        pm.read_run(g, 0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0), "reused run must read zero");
    }

    #[test]
    fn refcount_lifecycle() {
        let pm = PhysMem::new(4, AllocPolicy::Sequential);
        let f = pm.alloc().unwrap();
        pm.incref(f);
        assert_eq!(pm.refcount(f), 2);
        pm.decref(f);
        assert_eq!(pm.allocated(), 1);
        pm.decref(f);
        assert_eq!(pm.allocated(), 0);
        assert_eq!(pm.refcount(f), 0);
    }

    #[test]
    fn copy_moves_real_bytes() {
        let pm = PhysMem::new(4, AllocPolicy::Sequential);
        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        pm.write(a, 100, b"hello copier");
        pm.copy(b, 200, a, 100, 12);
        let mut buf = [0u8; 12];
        pm.read(b, 200, &mut buf);
        assert_eq!(&buf, b"hello copier");
    }

    #[test]
    fn same_frame_overlapping_copy() {
        let pm = PhysMem::new(1, AllocPolicy::Sequential);
        let f = pm.alloc().unwrap();
        pm.write(f, 0, b"abcdef");
        pm.copy(f, 2, f, 0, 4); // memmove semantics
        let mut buf = [0u8; 6];
        pm.read(f, 0, &mut buf);
        assert_eq!(&buf, b"ababcd");
    }

    #[test]
    fn copy_run_spans_frames_one_shot() {
        let pm = PhysMem::new(8, AllocPolicy::Sequential);
        let src = pm.alloc_contiguous(3).unwrap();
        let dst = pm.alloc_contiguous(3).unwrap();
        let data: Vec<u8> = (0..2 * PAGE_SIZE + 500).map(|i| (i % 253) as u8).collect();
        pm.write_run(src, 77, &data);
        pm.copy_run(dst, 33, src, 77, data.len());
        let mut got = vec![0u8; data.len()];
        pm.read_run(dst, 33, &mut got);
        assert_eq!(got, data);
    }

    #[test]
    fn copy_run_overlapping_is_memmove_both_directions() {
        let pm = PhysMem::new(4, AllocPolicy::Sequential);
        let f = pm.alloc_contiguous(4).unwrap();
        let data: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 251) as u8).collect();

        // Forward overlap (dst above src) across frame boundaries.
        pm.write_run(f, 0, &data);
        pm.copy_run(FrameId(f.0), 1000, f, 0, data.len());
        let mut got = vec![0u8; data.len()];
        pm.read_run(f, 1000, &mut got);
        assert_eq!(got, data);

        // Backward overlap (dst below src).
        pm.write_run(f, 1000, &data);
        pm.copy_run(f, 200, f, 1000, data.len());
        pm.read_run(f, 200, &mut got);
        assert_eq!(got, data);
    }

    #[test]
    fn copy_run_paged_matches_copy_run() {
        let pm = PhysMem::new(12, AllocPolicy::Sequential);
        let a = pm.alloc_contiguous(6).unwrap();
        let b = pm.alloc_contiguous(6).unwrap();
        let data: Vec<u8> = (0..5 * PAGE_SIZE).map(|i| (i % 241) as u8).collect();
        pm.write_run(a, 123, &data);
        pm.copy_run(b, 456, a, 123, data.len());
        pm.copy_run_paged(a, 123, b, 456, data.len()); // round-trip via baseline
        let mut got = vec![0u8; data.len()];
        pm.read_run(a, 123, &mut got);
        assert_eq!(got, data);

        // Overlapping baseline copy also keeps memmove semantics.
        pm.write_run(a, 0, &data);
        pm.copy_run_paged(FrameId(a.0), 512, a, 0, data.len());
        pm.read_run(a, 512, &mut got);
        assert_eq!(got, data);
    }

    #[test]
    #[should_panic(expected = "access to free frame")]
    fn copy_run_rejects_free_frames_mid_run() {
        let pm = PhysMem::new(8, AllocPolicy::Sequential);
        let a = pm.alloc_contiguous(2).unwrap();
        let b = pm.alloc_contiguous(3).unwrap();
        pm.decref(FrameId(b.0 + 1)); // hole in the middle of the dst run
        pm.copy_run(b, 0, a, 0, 2 * PAGE_SIZE);
    }

    #[test]
    fn digest_tracks_allocated_content_only() {
        let pm = PhysMem::new(4, AllocPolicy::Sequential);
        let empty = pm.digest();
        let a = pm.alloc().unwrap();
        let after_alloc = pm.digest();
        assert_ne!(empty, after_alloc, "allocation changes the digest");
        pm.write(a, 7, b"payload");
        let after_write = pm.digest();
        assert_ne!(after_alloc, after_write, "content changes the digest");
        // Same bytes in a different frame → different digest.
        pm.decref(a);
        let b = pm.alloc().unwrap();
        assert_eq!(b, a);
        let c = pm.alloc().unwrap();
        pm.write(c, 7, b"payload");
        pm.decref(b);
        assert_ne!(pm.digest(), after_write, "frame identity is folded in");
    }

    #[test]
    fn pin_tracking() {
        let pm = PhysMem::new(2, AllocPolicy::Sequential);
        let f = pm.alloc().unwrap();
        pm.pin(f);
        assert!(pm.is_pinned(f));
        pm.unpin(f);
        assert!(!pm.is_pinned(f));
    }

    #[test]
    fn pressure_hysteresis() {
        let pm = PhysMem::new(8, AllocPolicy::Sequential);
        pm.set_watermarks(2, 6);
        let frames: Vec<FrameId> = (0..6).map(|_| pm.alloc().unwrap()).collect();
        assert!(pm.pressure(), "high watermark must raise pressure");
        assert_eq!(pm.pressure_events(), 1);
        // Dropping below high but above low keeps pressure latched.
        pm.decref(frames[5]);
        pm.decref(frames[4]);
        pm.decref(frames[3]);
        assert!(pm.pressure(), "pressure must hold until the low watermark");
        pm.decref(frames[2]);
        assert!(!pm.pressure(), "low watermark must clear pressure");
        // Re-raising counts a fresh event.
        let _f = pm.alloc().unwrap();
        let _g = (0..3).map(|_| pm.alloc().unwrap()).collect::<Vec<_>>();
        assert!(pm.pressure());
        assert_eq!(pm.pressure_events(), 2);
    }

    #[test]
    fn default_watermarks_never_trip_light_pools() {
        let pm = PhysMem::new(64, AllocPolicy::Sequential);
        for _ in 0..32 {
            pm.alloc().unwrap();
        }
        assert!(!pm.pressure(), "half-full pool must not report pressure");
        assert_eq!(pm.pressure_events(), 0);
    }

    #[test]
    #[should_panic(expected = "freeing a pinned frame")]
    fn freeing_pinned_frame_panics() {
        let pm = PhysMem::new(2, AllocPolicy::Sequential);
        let f = pm.alloc().unwrap();
        pm.pin(f);
        pm.decref(f);
    }
}
