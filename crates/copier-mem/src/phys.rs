//! Simulated physical memory: a pool of 4 KiB frames with real backing data.
//!
//! Frames are identified by [`FrameId`]; two frames are *physically
//! contiguous* iff their ids are consecutive — the property the DMA engine
//! requires of its transfers (§4.3 of the paper). The allocator can hand out
//! deliberately scattered frames so that the dispatcher's subtask splitting
//! is exercised on realistic fragmented layouts.
//!
//! All frame data is real memory: copies through this module genuinely move
//! bytes, so correctness (not just timing) is testable end to end.

use std::cell::{Cell, RefCell};

/// Size of one page/frame in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Index of a physical frame. Consecutive ids are physically contiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u32);

/// How the allocator picks frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Pop the lowest free frame — long allocations come out contiguous.
    Sequential,
    /// Hand out frames in a pre-shuffled order — allocations are fragmented,
    /// matching a long-running system (Fig. 7-b "all pages non-contiguous").
    Scattered,
}

struct FrameSlot {
    /// Lazily allocated backing data; `None` until first touched.
    data: RefCell<Option<Box<[u8]>>>,
    /// CoW sharing count. 0 = free.
    refcnt: Cell<u16>,
    /// Pin count — a pinned frame's mapping must not be torn down (§4.5.4).
    pins: Cell<u16>,
}

/// Errors from the physical allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysError {
    /// The pool has too few free frames for the request.
    OutOfMemory,
    /// Enough frames are free, but no run of them is contiguous — a
    /// distinct cause (compaction would help, more memory would not).
    Fragmented,
}

/// A fixed-capacity pool of frames.
pub struct PhysMem {
    slots: Vec<FrameSlot>,
    free: RefCell<Vec<FrameId>>,
    policy: Cell<AllocPolicy>,
    allocated: Cell<usize>,
    /// Allocated-frame high watermark: at or above, the pool reports
    /// memory pressure (graceful-degradation signal).
    wmark_high: Cell<usize>,
    /// Low watermark: pressure clears only once allocation falls back to
    /// or below this (hysteresis, so the signal does not flap).
    wmark_low: Cell<usize>,
    /// Latched pressure state.
    pressured: Cell<bool>,
    /// Transitions into the pressured state.
    pressure_events: Cell<u64>,
}

impl PhysMem {
    /// Creates a pool of `frames` frames under the given policy.
    ///
    /// `Scattered` pre-shuffles the free list with a fixed multiplicative
    /// permutation so runs are reproducible.
    pub fn new(frames: usize, policy: AllocPolicy) -> Self {
        assert!(frames > 0 && frames < u32::MAX as usize);
        let slots = (0..frames)
            .map(|_| FrameSlot {
                data: RefCell::new(None),
                refcnt: Cell::new(0),
                pins: Cell::new(0),
            })
            .collect();
        let mut free: Vec<FrameId> = (0..frames as u32).map(FrameId).collect();
        if policy == AllocPolicy::Scattered {
            // Deterministic pseudo-shuffle: iterate with a stride coprime to
            // the frame count, which breaks up almost all contiguity.
            let n = frames as u64;
            let mut stride = (n / 2 + 1) | 1;
            while gcd(stride, n) != 1 {
                stride += 2;
            }
            free = (0..n).map(|i| FrameId(((i * stride) % n) as u32)).collect();
        }
        // Pop from the back; reverse so low ids come out first under Sequential.
        free.reverse();
        PhysMem {
            slots,
            free: RefCell::new(free),
            policy: Cell::new(policy),
            allocated: Cell::new(0),
            // Default watermarks: pressure at 7/8 of the pool, recovery at
            // 3/4 — headroom for pinned in-flight copies without flapping.
            wmark_high: Cell::new(frames - frames / 8),
            wmark_low: Cell::new((frames - frames / 4).min(frames.saturating_sub(1))),
            pressured: Cell::new(false),
            pressure_events: Cell::new(0),
        }
    }

    /// Total frames in the pool.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Frames currently allocated.
    pub fn allocated(&self) -> usize {
        self.allocated.get()
    }

    /// Current allocation policy.
    pub fn policy(&self) -> AllocPolicy {
        self.policy.get()
    }

    /// Allocates one frame with refcount 1. Its contents are zeroed.
    pub fn alloc(&self) -> Result<FrameId, PhysError> {
        let f = self.free.borrow_mut().pop().ok_or(PhysError::OutOfMemory)?;
        let slot = &self.slots[f.0 as usize];
        debug_assert_eq!(slot.refcnt.get(), 0);
        slot.refcnt.set(1);
        // Zero (or lazily create) the data: fresh frames must read as zero.
        let mut data = slot.data.borrow_mut();
        match data.as_mut() {
            Some(d) => d.fill(0),
            None => *data = Some(vec![0u8; PAGE_SIZE].into_boxed_slice()),
        }
        self.allocated.set(self.allocated.get() + 1);
        Ok(f)
    }

    /// Allocates `n` physically contiguous frames (refcount 1 each).
    ///
    /// Used for kernel buffers (sk_buffs) and huge-page-like regions. This
    /// scans for a run of free ids, so it succeeds even under `Scattered`.
    pub fn alloc_contiguous(&self, n: usize) -> Result<FrameId, PhysError> {
        assert!(n > 0);
        if n == 1 {
            return self.alloc();
        }
        // Find the lowest run of n free frames.
        let mut run = 0usize;
        let mut start = 0usize;
        let mut found = None;
        for (i, s) in self.slots.iter().enumerate() {
            if s.refcnt.get() == 0 {
                if run == 0 {
                    start = i;
                }
                run += 1;
                if run == n {
                    found = Some(start);
                    break;
                }
            } else {
                run = 0;
            }
        }
        let start = found.ok_or_else(|| {
            if self.free.borrow().len() >= n {
                PhysError::Fragmented
            } else {
                PhysError::OutOfMemory
            }
        })?;
        // Remove the run's ids from the free list.
        self.free
            .borrow_mut()
            .retain(|f| (f.0 as usize) < start || (f.0 as usize) >= start + n);
        for i in start..start + n {
            let slot = &self.slots[i];
            slot.refcnt.set(1);
            let mut data = slot.data.borrow_mut();
            match data.as_mut() {
                Some(d) => d.fill(0),
                None => *data = Some(vec![0u8; PAGE_SIZE].into_boxed_slice()),
            }
        }
        self.allocated.set(self.allocated.get() + n);
        Ok(FrameId(start as u32))
    }

    /// Increments a frame's share count (CoW fork).
    pub fn incref(&self, f: FrameId) {
        let slot = &self.slots[f.0 as usize];
        assert!(slot.refcnt.get() > 0, "incref of free frame");
        slot.refcnt.set(slot.refcnt.get() + 1);
    }

    /// Decrements the share count, freeing the frame at zero.
    pub fn decref(&self, f: FrameId) {
        let slot = &self.slots[f.0 as usize];
        let rc = slot.refcnt.get();
        assert!(rc > 0, "decref of free frame {f:?}");
        slot.refcnt.set(rc - 1);
        if rc == 1 {
            assert_eq!(slot.pins.get(), 0, "freeing a pinned frame");
            self.free.borrow_mut().push(f);
            self.allocated.set(self.allocated.get() - 1);
        }
    }

    /// Current share count of a frame.
    pub fn refcount(&self, f: FrameId) -> u16 {
        self.slots[f.0 as usize].refcnt.get()
    }

    /// Pins a frame (its mapping is locked for an in-flight copy).
    pub fn pin(&self, f: FrameId) {
        let slot = &self.slots[f.0 as usize];
        assert!(slot.refcnt.get() > 0, "pin of free frame");
        slot.pins.set(slot.pins.get() + 1);
    }

    /// Releases one pin.
    pub fn unpin(&self, f: FrameId) {
        let slot = &self.slots[f.0 as usize];
        let p = slot.pins.get();
        assert!(p > 0, "unpin without pin");
        slot.pins.set(p - 1);
    }

    /// Whether the frame is currently pinned.
    pub fn is_pinned(&self, f: FrameId) -> bool {
        self.slots[f.0 as usize].pins.get() > 0
    }

    /// Number of frames with a nonzero pin count (leak detection: after
    /// every in-flight copy settles this must return to zero).
    pub fn pinned_frames(&self) -> usize {
        self.slots.iter().filter(|s| s.pins.get() > 0).count()
    }

    /// Sets the pressure watermarks (allocated-frame counts). Pressure is
    /// raised at `high` and clears only at or below `low` (`low < high`).
    pub fn set_watermarks(&self, low: usize, high: usize) {
        assert!(low < high, "low watermark must sit below high");
        self.wmark_low.set(low);
        self.wmark_high.set(high.min(self.slots.len()));
        // Re-evaluate immediately so a tightened watermark takes effect
        // without waiting for the next allocation.
        self.pressure();
    }

    /// Current watermarks as `(low, high)` allocated-frame counts.
    pub fn watermarks(&self) -> (usize, usize) {
        (self.wmark_low.get(), self.wmark_high.get())
    }

    /// Whether the pool is under memory pressure, with hysteresis: raised
    /// when allocation reaches the high watermark, cleared only once it
    /// falls back to the low watermark. Consumers (the Copier service)
    /// poll this to switch into graceful degradation (§4.6 fallback).
    pub fn pressure(&self) -> bool {
        let a = self.allocated.get();
        if self.pressured.get() {
            if a <= self.wmark_low.get() {
                self.pressured.set(false);
            }
        } else if a >= self.wmark_high.get() {
            self.pressured.set(true);
            self.pressure_events.set(self.pressure_events.get() + 1);
        }
        self.pressured.get()
    }

    /// Times the pool transitioned into the pressured state.
    pub fn pressure_events(&self) -> u64 {
        self.pressure_events.get()
    }

    /// Reads from a frame into `buf`.
    ///
    /// # Panics
    /// If the range exceeds the page or the frame is free.
    pub fn read(&self, f: FrameId, off: usize, buf: &mut [u8]) {
        assert!(off + buf.len() <= PAGE_SIZE);
        let slot = &self.slots[f.0 as usize];
        assert!(slot.refcnt.get() > 0, "read of free frame");
        let data = slot.data.borrow();
        buf.copy_from_slice(
            &data.as_ref().expect("allocated frame has data")[off..off + buf.len()],
        );
    }

    /// Writes `buf` into a frame.
    pub fn write(&self, f: FrameId, off: usize, buf: &[u8]) {
        assert!(off + buf.len() <= PAGE_SIZE);
        let slot = &self.slots[f.0 as usize];
        assert!(slot.refcnt.get() > 0, "write of free frame");
        let mut data = slot.data.borrow_mut();
        data.as_mut().expect("allocated frame has data")[off..off + buf.len()].copy_from_slice(buf);
    }

    /// Copies bytes between frames — the real data movement behind every
    /// simulated copy.
    ///
    /// Handles the same-frame case (used by intra-page `memmove`) with a
    /// bounce buffer.
    pub fn copy(&self, dst: FrameId, dst_off: usize, src: FrameId, src_off: usize, len: usize) {
        assert!(dst_off + len <= PAGE_SIZE && src_off + len <= PAGE_SIZE);
        if len == 0 {
            return;
        }
        let ds = &self.slots[dst.0 as usize];
        let ss = &self.slots[src.0 as usize];
        assert!(ds.refcnt.get() > 0 && ss.refcnt.get() > 0);
        if dst == src {
            let mut data = ds.data.borrow_mut();
            let d = data.as_mut().expect("allocated frame has data");
            d.copy_within(src_off..src_off + len, dst_off);
            return;
        }
        let sdata = ss.data.borrow();
        let mut ddata = ds.data.borrow_mut();
        ddata.as_mut().expect("allocated frame has data")[dst_off..dst_off + len].copy_from_slice(
            &sdata.as_ref().expect("allocated frame has data")[src_off..src_off + len],
        );
    }

    /// Copies a whole frame (CoW break helper). Returns bytes copied.
    pub fn copy_frame(&self, dst: FrameId, src: FrameId) -> usize {
        self.copy(dst, 0, src, 0, PAGE_SIZE);
        PAGE_SIZE
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_alloc_is_contiguous() {
        let pm = PhysMem::new(16, AllocPolicy::Sequential);
        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        let c = pm.alloc().unwrap();
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn scattered_alloc_is_fragmented() {
        let pm = PhysMem::new(64, AllocPolicy::Scattered);
        let ids: Vec<u32> = (0..8).map(|_| pm.alloc().unwrap().0).collect();
        let contiguous_pairs = ids.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(contiguous_pairs <= 1, "ids = {ids:?}");
    }

    #[test]
    fn alloc_contiguous_finds_runs() {
        let pm = PhysMem::new(32, AllocPolicy::Scattered);
        let start = pm.alloc_contiguous(8).unwrap();
        // Frames start..start+8 all allocated.
        for i in 0..8 {
            assert_eq!(pm.refcount(FrameId(start.0 + i)), 1);
        }
        assert_eq!(pm.allocated(), 8);
    }

    #[test]
    fn oom_reported() {
        let pm = PhysMem::new(2, AllocPolicy::Sequential);
        pm.alloc().unwrap();
        pm.alloc().unwrap();
        assert_eq!(pm.alloc(), Err(PhysError::OutOfMemory));
        assert_eq!(pm.alloc_contiguous(2), Err(PhysError::OutOfMemory));
    }

    #[test]
    fn fragmentation_distinguished_from_oom() {
        let pm = PhysMem::new(4, AllocPolicy::Sequential);
        let frames: Vec<FrameId> = (0..4).map(|_| pm.alloc().unwrap()).collect();
        // Free alternating frames: 2 free frames, but no contiguous pair.
        pm.decref(frames[0]);
        pm.decref(frames[2]);
        assert_eq!(pm.alloc_contiguous(2), Err(PhysError::Fragmented));
        // Free a neighbor: now a run exists.
        pm.decref(frames[1]);
        assert!(pm.alloc_contiguous(2).is_ok());
    }

    #[test]
    fn fresh_frames_are_zero_even_after_reuse() {
        let pm = PhysMem::new(1, AllocPolicy::Sequential);
        let f = pm.alloc().unwrap();
        pm.write(f, 10, b"dirty");
        pm.decref(f);
        let g = pm.alloc().unwrap();
        assert_eq!(g, f);
        let mut buf = [1u8; 16];
        pm.read(g, 8, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn refcount_lifecycle() {
        let pm = PhysMem::new(4, AllocPolicy::Sequential);
        let f = pm.alloc().unwrap();
        pm.incref(f);
        assert_eq!(pm.refcount(f), 2);
        pm.decref(f);
        assert_eq!(pm.allocated(), 1);
        pm.decref(f);
        assert_eq!(pm.allocated(), 0);
        assert_eq!(pm.refcount(f), 0);
    }

    #[test]
    fn copy_moves_real_bytes() {
        let pm = PhysMem::new(4, AllocPolicy::Sequential);
        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        pm.write(a, 100, b"hello copier");
        pm.copy(b, 200, a, 100, 12);
        let mut buf = [0u8; 12];
        pm.read(b, 200, &mut buf);
        assert_eq!(&buf, b"hello copier");
    }

    #[test]
    fn same_frame_overlapping_copy() {
        let pm = PhysMem::new(1, AllocPolicy::Sequential);
        let f = pm.alloc().unwrap();
        pm.write(f, 0, b"abcdef");
        pm.copy(f, 2, f, 0, 4); // memmove semantics
        let mut buf = [0u8; 6];
        pm.read(f, 0, &mut buf);
        assert_eq!(&buf, b"ababcd");
    }

    #[test]
    fn pin_tracking() {
        let pm = PhysMem::new(2, AllocPolicy::Sequential);
        let f = pm.alloc().unwrap();
        pm.pin(f);
        assert!(pm.is_pinned(f));
        pm.unpin(f);
        assert!(!pm.is_pinned(f));
    }

    #[test]
    fn pressure_hysteresis() {
        let pm = PhysMem::new(8, AllocPolicy::Sequential);
        pm.set_watermarks(2, 6);
        let frames: Vec<FrameId> = (0..6).map(|_| pm.alloc().unwrap()).collect();
        assert!(pm.pressure(), "high watermark must raise pressure");
        assert_eq!(pm.pressure_events(), 1);
        // Dropping below high but above low keeps pressure latched.
        pm.decref(frames[5]);
        pm.decref(frames[4]);
        pm.decref(frames[3]);
        assert!(pm.pressure(), "pressure must hold until the low watermark");
        pm.decref(frames[2]);
        assert!(!pm.pressure(), "low watermark must clear pressure");
        // Re-raising counts a fresh event.
        let _f = pm.alloc().unwrap();
        let _g = (0..3).map(|_| pm.alloc().unwrap()).collect::<Vec<_>>();
        assert!(pm.pressure());
        assert_eq!(pm.pressure_events(), 2);
    }

    #[test]
    fn default_watermarks_never_trip_light_pools() {
        let pm = PhysMem::new(64, AllocPolicy::Sequential);
        for _ in 0..32 {
            pm.alloc().unwrap();
        }
        assert!(!pm.pressure(), "half-full pool must not report pressure");
        assert_eq!(pm.pressure_events(), 0);
    }

    #[test]
    #[should_panic(expected = "freeing a pinned frame")]
    fn freeing_pinned_frame_panics() {
        let pm = PhysMem::new(2, AllocPolicy::Sequential);
        let f = pm.alloc().unwrap();
        pm.pin(f);
        pm.decref(f);
    }
}
