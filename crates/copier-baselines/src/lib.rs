//! # copier-baselines — competing systems from the evaluation
//!
//! * [`zio::Zio`] — transparent copy elision by page remapping (OSDI '22);
//! * zero-copy send and Userspace Bypass live in `copier-os::net` as
//!   [`copier_os::IoMode`] variants (they are syscall-path behaviors);
//! * io_uring lives in `copier_os::uring`.

pub mod zio;

pub use zio::{Zio, ZioStats, ZIO_PER_PAGE, ZIO_TRACK};
