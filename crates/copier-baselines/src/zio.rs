//! zIO (OSDI '22) baseline: transparent copy elision by page remapping.
//!
//! zIO interposes on large userspace `memcpy`s: instead of copying, it
//! remaps the source pages at the destination VA read-only/CoW and lets
//! later writes fault in private copies on demand. Its documented
//! limitations, reproduced here (§2.2 of the Copier paper):
//!
//! * user-mode only — it cannot elide cross-privilege copies;
//! * page remapping needs page congruence (same offset within the page)
//!   and whole pages; ragged heads/tails are copied eagerly;
//! * remap + TLB-shootdown overheads mean it only pays off above a size
//!   threshold (the Copier evaluation sets 4 KB; zIO's paper says 16 KB);
//! * reused destination buffers (Redis's input buffer) take CoW faults on
//!   the next write, eroding the win.

use std::cell::Cell;
use std::rc::Rc;

use copier_client::sync_memcpy;
use copier_hw::CostModel;
use copier_mem::{MemError, VirtAddr, PAGE_SIZE};
use copier_os::Process;
use copier_sim::{Core, Nanos};

/// Interposition bookkeeping per intercepted copy (zIO's tracking table).
pub const ZIO_TRACK: Nanos = Nanos(250);
/// Per-page remap cost (PTE rewrite; the shootdown is charged separately).
pub const ZIO_PER_PAGE: Nanos = Nanos(120);

/// Counters for the elision behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZioStats {
    /// Bytes elided by remapping.
    pub elided: u64,
    /// Bytes copied eagerly (below threshold, ragged edges, incongruent).
    pub eager: u64,
    /// Remap operations performed.
    pub remaps: u64,
}

/// The zIO interposition layer for one simulated machine.
pub struct Zio {
    cost: Rc<CostModel>,
    /// Minimum copy size to attempt elision.
    pub threshold: Cell<usize>,
    stats: Cell<ZioStats>,
}

impl Zio {
    /// Creates the layer with the evaluation's 4 KB threshold.
    pub fn new(cost: Rc<CostModel>) -> Rc<Self> {
        Rc::new(Zio {
            cost,
            threshold: Cell::new(4096),
            stats: Cell::new(ZioStats::default()),
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ZioStats {
        self.stats.get()
    }

    /// Intercepted `memcpy(dst, src, len)` inside `proc`.
    ///
    /// Falls back to a real copy whenever elision cannot apply.
    pub async fn memcpy(
        &self,
        core: &Rc<Core>,
        proc: &Rc<Process>,
        dst: VirtAddr,
        src: VirtAddr,
        len: usize,
    ) -> Result<(), MemError> {
        core.advance(ZIO_TRACK).await;
        // memcpy's contract forbids overlap; enforce it rather than let the
        // remap loop corrupt PTE refcounts on a bad interposed call.
        assert!(
            dst.0 + len as u64 <= src.0 || src.0 + len as u64 <= dst.0,
            "zio: overlapping memcpy ranges are undefined"
        );
        let mut st = self.stats.get();
        // Elision requires the threshold and page congruence.
        if len < self.threshold.get() || src.page_off() != dst.page_off() {
            st.eager += len as u64;
            self.stats.set(st);
            sync_memcpy(core, &self.cost, &proc.space, dst, src, len).await?;
            return Ok(());
        }
        // Ragged head up to the first page boundary.
        let head = if src.is_page_aligned() {
            0
        } else {
            PAGE_SIZE - src.page_off()
        };
        let pages = (len - head) / PAGE_SIZE;
        let tail = len - head - pages * PAGE_SIZE;
        if pages == 0 {
            st.eager += len as u64;
            self.stats.set(st);
            sync_memcpy(core, &self.cost, &proc.space, dst, src, len).await?;
            return Ok(());
        }
        if head > 0 {
            sync_memcpy(core, &self.cost, &proc.space, dst, src, head).await?;
        }
        // Source pages must be resolved before their PTEs can be aliased.
        let mid_src = src.add(head);
        let mid_dst = dst.add(head);
        for p in 0..pages {
            proc.space.resolve(mid_src.add(p * PAGE_SIZE), false)?;
        }
        proc.space.alias_at(mid_dst, &proc.space, mid_src, pages)?;
        core.advance(Nanos(
            ZIO_PER_PAGE.as_nanos() * pages as u64 + self.cost.tlb_shootdown.as_nanos(),
        ))
        .await;
        if tail > 0 {
            sync_memcpy(
                core,
                &self.cost,
                &proc.space,
                dst.add(head + pages * PAGE_SIZE),
                src.add(head + pages * PAGE_SIZE),
                tail,
            )
            .await?;
        }
        st.elided += (pages * PAGE_SIZE) as u64;
        st.eager += (head + tail) as u64;
        st.remaps += 1;
        self.stats.set(st);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::Prot;
    use copier_os::Os;
    use copier_sim::{Machine, Sim};

    fn world() -> (Sim, Rc<Os>, Rc<Zio>) {
        let sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 1);
        let os = Os::boot(&h, machine, 2048);
        let zio = Zio::new(Rc::clone(&os.cost));
        (sim, os, zio)
    }

    #[test]
    fn large_aligned_copy_is_elided_and_correct() {
        let (mut sim, os, zio) = world();
        let core = os.machine.core(0);
        let p = os.spawn_process();
        let zio2 = Rc::clone(&zio);
        sim.spawn("t", async move {
            let len = 32 * 1024;
            let src = p.space.mmap(len, Prot::RW, true).unwrap();
            let dst = p.space.mmap(len, Prot::RW, true).unwrap();
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            p.space.write_bytes(src, &data).unwrap();
            zio2.memcpy(&core, &p, dst, src, len).await.unwrap();
            assert_eq!(zio2.stats().elided, len as u64);
            let mut out = vec![0u8; len];
            p.space.read_bytes(dst, &mut out).unwrap();
            assert_eq!(out, data);
            // A destination write breaks CoW without disturbing the source.
            p.space.write_bytes(dst, b"W").unwrap();
            p.space.read_bytes(src, &mut out).unwrap();
            assert_eq!(out, data);
        });
        sim.run();
    }

    #[test]
    fn below_threshold_or_incongruent_copies_eagerly() {
        let (mut sim, os, zio) = world();
        let core = os.machine.core(0);
        let p = os.spawn_process();
        let zio2 = Rc::clone(&zio);
        sim.spawn("t", async move {
            let src = p.space.mmap(64 * 1024, Prot::RW, true).unwrap();
            let dst = p.space.mmap(64 * 1024, Prot::RW, true).unwrap();
            p.space.write_bytes(src, &[9u8; 1024]).unwrap();
            // Small copy.
            zio2.memcpy(&core, &p, dst, src, 1024).await.unwrap();
            assert_eq!(zio2.stats().remaps, 0);
            // Large but incongruent (offsets differ modulo page size).
            zio2.memcpy(&core, &p, dst.add(100), src.add(200), 32 * 1024)
                .await
                .unwrap();
            assert_eq!(zio2.stats().remaps, 0);
            assert!(zio2.stats().eager >= 1024 + 32 * 1024);
        });
        sim.run();
    }

    #[test]
    fn ragged_edges_copied_pages_remapped() {
        let (mut sim, os, zio) = world();
        let core = os.machine.core(0);
        let p = os.spawn_process();
        let zio2 = Rc::clone(&zio);
        sim.spawn("t", async move {
            let len = 20 * 1024;
            let src = p.space.mmap(len + PAGE_SIZE, Prot::RW, true).unwrap();
            let dst = p.space.mmap(len + PAGE_SIZE, Prot::RW, true).unwrap();
            let data: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
            p.space.write_bytes(src.add(100), &data).unwrap();
            zio2.memcpy(&core, &p, dst.add(100), src.add(100), len)
                .await
                .unwrap();
            let st = zio2.stats();
            assert_eq!(st.remaps, 1);
            assert!(st.eager > 0 && st.elided > 0);
            let mut out = vec![0u8; len];
            p.space.read_bytes(dst.add(100), &mut out).unwrap();
            assert_eq!(out, data);
        });
        sim.run();
    }
}
