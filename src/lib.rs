//! # Copier — coordinated asynchronous memory copy as a first-class OS service
//!
//! A from-scratch Rust reproduction of *"How to Copy Memory? Coordinated
//! Asynchronous Copy as a First-Class OS Service"* (SOSP 2025), built over
//! a deterministic virtual-time simulator (see `DESIGN.md`).
//!
//! This facade re-exports the whole stack:
//!
//! * [`sim`] — deterministic discrete-event simulator (cores, time, energy);
//! * [`mem`] — simulated memory subsystem (frames, page tables, CoW);
//! * [`hw`] — copy units, DMA engine, piggyback dispatcher, ATCache;
//! * [`core`] — the Copier service: CSH queues, descriptors, dependency
//!   tracking, absorption, scheduler, cgroups, fault handling;
//! * [`client`] — libCopier (`amemcpy`/`csync` and the low-level APIs);
//! * [`os`] — simulated OS: netstack, Binder, CoW handler, io_uring;
//! * [`baselines`] — zIO and friends;
//! * [`apps`] — the evaluation applications (mini-Redis, proxy, …);
//! * [`sanitizer`] — CopierSanitizer (shadow-memory misuse detection);
//! * [`gen`] — CopierGen (automatic csync insertion over a mini-IR);
//! * [`model`] — executable formal model of the Appendix A refinement.
//!
//! Start with `examples/quickstart.rs`.

pub use copier_apps as apps;
pub use copier_baselines as baselines;
pub use copier_client as client;
pub use copier_core as core;
pub use copier_gen as gen;
pub use copier_hw as hw;
pub use copier_mem as mem;
pub use copier_model as model;
pub use copier_os as os;
pub use copier_sanitizer as sanitizer;
pub use copier_sim as sim;
