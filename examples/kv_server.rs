//! A mini-Redis session over the simulated network stack, baseline versus
//! Copier — the paper's flagship application (§6.2.1).
//!
//! Run with: `cargo run --example kv_server`

use std::rc::Rc;

use copier::apps::redis::{run_client, Op, RedisMode, RedisServer};
use copier::os::{NetStack, Os};
use copier::sim::{Machine, Sim, SimRng};

fn run(mode: RedisMode, with_copier: bool, label: &str) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 3);
    let os = Os::boot(&h, machine, 32 * 1024);
    if with_copier {
        os.install_copier(vec![os.machine.core(2)], Default::default());
    }
    let net = NetStack::new(&os);
    let server = RedisServer::new(&os, &net, mode, 512 * 1024).unwrap();
    let (client_sock, server_sock) = net.socket_pair();

    let score = os.machine.core(1);
    let server2 = Rc::clone(&server);
    sim.spawn("redis-server", async move {
        // 20 SETs + 20 GETs + 2 seeding SETs.
        server2.serve(&score, server_sock, 42).await;
    });

    let os2 = Rc::clone(&os);
    let net2 = Rc::clone(&net);
    let ccore = os.machine.core(0);
    let label = label.to_string();
    sim.spawn("redis-client", async move {
        let rng = Rc::new(SimRng::new(7));
        let value_len = 16 * 1024;
        let sets = run_client(
            Rc::clone(&os2),
            Rc::clone(&net2),
            Rc::clone(&ccore),
            Rc::clone(&client_sock),
            Op::Set,
            1,
            value_len,
            20,
            Rc::clone(&rng),
        )
        .await;
        let gets = run_client(
            Rc::clone(&os2),
            net2,
            ccore,
            client_sock,
            Op::Get,
            1,
            value_len,
            20,
            rng,
        )
        .await;
        let avg = |v: &[copier::apps::redis::Sample]| {
            v.iter().map(|s| s.latency.as_nanos()).sum::<u64>() / v.len() as u64
        };
        println!(
            "{label:>10}: SET avg {:>7}ns   GET avg {:>7}ns   (16KB values, data verified)",
            avg(&sets),
            avg(&gets)
        );
        if let Some(svc) = os2.copier.borrow().as_ref() {
            let st = svc.stats();
            println!(
                "{label:>10}: absorbed {} bytes, {} aborts, {} tasks",
                st.bytes_absorbed, st.aborts, st.tasks_completed
            );
            println!(
                "{label:>10}: overload: {} rejected ({} bytes shed), {} credits granted, \
                 {} degraded sync copies, {} pressure events",
                st.admission_rejected,
                st.shed_bytes,
                st.credits_granted,
                st.degraded_sync_copies,
                st.pressure_events
            );
            println!(
                "{label:>10}: control plane: {} hazard scans ({} index hits, peak {} \
                 indexed ranges), {} settled / {} active rounds",
                st.hazard_scans,
                st.index_hits,
                st.index_entries_peak,
                st.rounds_settled,
                st.rounds_active
            );
            svc.stop();
        }
    });
    sim.run();
}

fn main() {
    println!("mini-Redis over the simulated netstack, 16KB values:\n");
    run(RedisMode::Baseline, false, "baseline");
    run(RedisMode::Copier, true, "copier");
}
