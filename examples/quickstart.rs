//! Quickstart: boot a simulated machine, start the Copier service, and
//! run the canonical copy-use pipeline — `amemcpy`, overlap with compute,
//! `csync`, use.
//!
//! Run with: `cargo run --example quickstart`

use std::rc::Rc;

use copier::client::CopierHandle;
use copier::core::{Copier, CopierConfig};
use copier::hw::CostModel;
use copier::mem::{AddressSpace, AllocPolicy, PhysMem, Prot};
use copier::sim::{Machine, Nanos, Sim};

fn main() {
    // 1. A deterministic virtual-time machine: core 0 runs the app,
    //    core 1 is dedicated to the Copier service (the paper's setup).
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(4096, AllocPolicy::Scattered));

    // 2. Start the service: AVX+DMA piggyback dispatcher, ATCache,
    //    absorption, NAPI polling — all per the paper's defaults.
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::new(CostModel::default()),
        CopierConfig::default(),
    );
    svc.start();

    // 3. A process with an address space and a libCopier handle.
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let svc2 = Rc::clone(&svc);
    let h2 = h.clone();

    sim.spawn("app", async move {
        let len = 256 * 1024;
        let src = space.mmap(len, Prot::RW, true).unwrap();
        let dst = space.mmap(len, Prot::RW, true).unwrap();
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        space.write_bytes(src, &payload).unwrap();

        // --- The Copier programming model (Fig. 4) ---
        let t0 = h2.now();
        lib.amemcpy(&core, dst, src, len).await.unwrap(); // submit, don't block
        core.advance(Nanos::from_micros(40)).await; //  the Copy-Use window
        lib.csync(&core, dst, len).await.unwrap(); //  sync before use
        let t_async = h2.now() - t0;

        let mut out = vec![0u8; len];
        space.read_bytes(dst, &mut out).unwrap();
        assert_eq!(out, payload, "bytes arrived intact");

        // --- The same work with a synchronous memcpy ---
        let t1 = h2.now();
        copier::client::sync_memcpy(&core, svc2.cost_model(), &space, dst, src, len)
            .await
            .unwrap();
        core.advance(Nanos::from_micros(40)).await;
        let t_sync = h2.now() - t1;

        println!("copy+compute, async (Copier): {t_async}");
        println!("copy+compute, sync (memcpy) : {t_sync}");
        println!(
            "copy hidden behind the window : {:.0}%",
            (1.0 - t_async.as_nanos() as f64 / t_sync.as_nanos() as f64) * 100.0
        );
        println!("service stats: {:?}", svc2.stats());
        svc2.stop();
    });
    sim.run();
}
