//! Copy absorption end to end: a proxy forwards a message it barely
//! touches, and Copier short-circuits the three copies (kernel → user →
//! output → kernel) into one kernel-to-kernel copy, discarding the
//! intermediates with `abort` (§4.4).
//!
//! Run with: `cargo run --example proxy_absorption`

use std::rc::Rc;

use copier::apps::proxy::{echo_server, Proxy, ProxyMode};
use copier::mem::Prot;
use copier::os::{IoMode, NetStack, Os};
use copier::sim::{Machine, Nanos, Sim};

fn run(mode: ProxyMode, with_copier: bool, label: &str) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 4);
    let os = Os::boot(&h, machine, 64 * 1024);
    if with_copier {
        os.install_copier(vec![os.machine.core(3)], Default::default());
    }
    let net = NetStack::new(&os);
    let proxy = Proxy::new(&os, &net, mode, 512 * 1024).unwrap();
    let (client_tx, proxy_rx) = net.socket_pair();
    let (proxy_tx, upstream_rx) = net.socket_pair();
    let msgs = 16u64;
    let len = 64 * 1024;

    let pcore = os.machine.core(1);
    let proxy2 = Rc::clone(&proxy);
    sim.spawn("proxy", async move {
        proxy2.pump(&pcore, proxy_rx, proxy_tx, msgs).await;
    });
    let os2 = Rc::clone(&os);
    let net2 = Rc::clone(&net);
    sim.spawn(
        "upstream",
        echo_server(
            Rc::clone(&os),
            Rc::clone(&net),
            os.machine.core(2),
            upstream_rx,
            msgs,
            None,
        ),
    );
    let ccore = os.machine.core(0);
    let h2 = h.clone();
    let label = label.to_string();
    sim.spawn("client", async move {
        let proc = os2.spawn_process();
        let buf = proc.space.mmap(len, Prot::RW, true).unwrap();
        proc.space.write_bytes(buf, &vec![0xAB; len]).unwrap();
        let t0 = h2.now();
        for _ in 0..msgs {
            net2.send(&ccore, &proc, &client_tx, buf, len, IoMode::Sync)
                .await
                .unwrap();
        }
        h2.sleep(Nanos::from_millis(5)).await;
        println!("{label:>10}: {msgs} x 64KB forwarded in {}", h2.now() - t0);
        if let Some(svc) = os2.copier.borrow().as_ref() {
            let st = svc.stats();
            println!(
                "{label:>10}: {} bytes absorbed (short-circuited), {} intermediate copies aborted",
                st.bytes_absorbed, st.aborts
            );
            svc.stop();
        }
    });
    sim.run();
}

fn main() {
    println!("TinyProxy-style forwarding, 64KB messages:\n");
    run(ProxyMode::Baseline, false, "baseline");
    run(ProxyMode::Copier, true, "copier");
}
