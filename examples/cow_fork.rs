//! Copy-on-write fault handling with Copier (§5.2): fork a process, take
//! write faults on 2MB regions, and compare the blocking time of the
//! in-handler copy against the Copier-split handler. Demonstrates the
//! multi-replica case zero-copy systems cannot express.
//!
//! Run with: `cargo run --example cow_fork`

use std::rc::Rc;

use copier::mem::{Prot, PAGE_SIZE};
use copier::os::{handle_cow_fault, Os};
use copier::sim::{Machine, Sim};

fn run(region: usize, use_copier: bool, label: &str) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 8192);
    if use_copier {
        os.install_copier(vec![os.machine.core(1)], Default::default());
    }
    let parent = os.spawn_process();
    let core = os.machine.core(0);
    let os2 = Rc::clone(&os);
    let label = label.to_string();
    sim.spawn("faults", async move {
        let va = parent.space.mmap(region, Prot::RW, true).unwrap();
        let secret: Vec<u8> = (0..region).map(|i| (i % 251) as u8).collect();
        parent.space.write_bytes(va, &secret).unwrap();
        // Fork: both sides now share the pages copy-on-write.
        let child = parent.space.fork(99).unwrap();
        // Parent writes → the fault handler must produce a private replica.
        let outcome = handle_cow_fault(&os2, &core, &parent, va, region, use_copier)
            .await
            .unwrap();
        parent.space.write_bytes(va, b"parent's new data").unwrap();
        // The child still sees the original bytes — two live replicas.
        let mut buf = vec![0u8; region];
        child.read_bytes(va, &mut buf).unwrap();
        assert_eq!(buf, secret, "child's view is intact");
        println!(
            "{label:>10}: {}KB region, fault blocked the thread for {}",
            region / 1024,
            outcome.blocked
        );
        if let Some(svc) = os2.copier.borrow().as_ref() {
            svc.stop();
        }
    });
    sim.run();
}

fn main() {
    println!("CoW fault handling (fork + write), per-fault blocking time:\n");
    for &region in &[PAGE_SIZE, 2 * 1024 * 1024] {
        run(region, false, "baseline");
        run(region, true, "copier");
    }
}
