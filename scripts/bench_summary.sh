#!/usr/bin/env bash
# Print the perf trajectory from every committed BENCH_*.json in one
# uniform table. Each bench writes a top-level `summary` array of
# {name, metric, bar, value} rows (see copier_bench::json::Json::summary);
# the metric suffix encodes the bar direction: *_max means value <= bar
# passes, *_min means value >= bar passes.
#
# Rows from smoke-mode runs are marked but not gated — smoke workloads
# are plumbing checks, their timings are not meaningful. Exits non-zero
# if any full-mode row misses its bar.
set -euo pipefail
cd "$(dirname "$0")/.."

shopt -s nullglob
files=(BENCH_*.json)
if [ ${#files[@]} -eq 0 ]; then
    echo "no BENCH_*.json files found — run the fig_* benches first" >&2
    exit 1
fi

python3 - "${files[@]}" <<'EOF'
import json, sys

fail = 0
print(f"{'bench':<18} {'name':<26} {'metric':<12} {'bar':>8} {'value':>10}  status")
for path in sys.argv[1:]:
    with open(path) as f:
        d = json.load(f)
    bench = d.get("bench", path)
    smoke = d.get("smoke", False)
    rows = d.get("summary")
    if rows is None:
        print(f"{bench:<18} (no summary array)")
        continue
    for r in rows:
        name, metric = r["name"], r["metric"]
        bar, value = float(r["bar"]), float(r["value"])
        ok = value <= bar if metric.endswith("_max") else value >= bar
        if smoke:
            status = "smoke"
        elif ok:
            status = "ok"
        else:
            status = "MISS"
            fail = 1
        print(f"{bench:<18} {name:<26} {metric:<12} {bar:>8.3g} {value:>10.4g}  {status}")
sys.exit(fail)
EOF
