#!/usr/bin/env bash
# Tier-1 verify, hermetically: the workspace must build and test with
# zero registry access. --offline is the point — a dependency on a
# non-vendored crate regresses exactly this command, which is how the
# seed state (rand/proptest/criterion unfetchable) broke the build.
# Cargo.lock is committed; --locked refuses silent re-resolution.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --offline --locked
cargo test -q --workspace --offline --locked
cargo clippy --workspace --offline --locked -- -D warnings

# Host-perf smoke: the wall-clock bench must run end to end and emit
# parseable JSON (tiny sizes; this is a plumbing check, not a perf gate).
HOSTPERF_SMOKE=1 cargo bench -q -p copier-bench --offline --locked --bench fig_hostperf
if command -v jq >/dev/null 2>&1; then
    jq -e '.layouts | length > 0' BENCH_hostperf.json >/dev/null
else
    python3 -c 'import json,sys; d=json.load(open("BENCH_hostperf.json")); sys.exit(0 if d["layouts"] else 1)'
fi
echo "BENCH_hostperf.json OK"

# Control-plane smoke: same plumbing check for the pending-index bench
# (it also re-asserts linear/indexed plan identity on every window).
CTRLPERF_SMOKE=1 cargo bench -q -p copier-bench --offline --locked --bench fig_ctrlperf
if command -v jq >/dev/null 2>&1; then
    jq -e '.depths | length > 0' BENCH_ctrlperf.json >/dev/null
else
    python3 -c 'import json,sys; d=json.load(open("BENCH_ctrlperf.json")); sys.exit(0 if d["depths"] else 1)'
fi
echo "BENCH_ctrlperf.json OK"

# Trace smoke: record a fig07-class run, replay it in lockstep, and
# localize an injected perturbation — the bench asserts all three, and
# the JSON must confirm the replay was bit-identical (DESIGN.md §14).
TRACE_SMOKE=1 cargo bench -q -p copier-bench --offline --locked --bench fig_trace
if command -v jq >/dev/null 2>&1; then
    jq -e '.replay.identical == true' BENCH_trace.json >/dev/null
else
    python3 -c 'import json,sys; d=json.load(open("BENCH_trace.json")); sys.exit(0 if d["replay"]["identical"] else 1)'
fi
echo "BENCH_trace.json OK"

# Crash smoke: journaled run + seeded crash/restart sweep — the bench
# asserts virtual-time identity and crash coverage; the JSON must show
# zero exactly-once violations (DESIGN.md §15). The 5% record-overhead
# bar is full-mode only (smoke timings are too short to be meaningful).
CRASH_SMOKE=1 cargo bench -q -p copier-bench --offline --locked --bench fig_crash
if command -v jq >/dev/null 2>&1; then
    jq -e '.exactly_once.violations == 0 and .exactly_once.crashes > 0' BENCH_crash.json >/dev/null
else
    python3 -c 'import json,sys; d=json.load(open("BENCH_crash.json"))["exactly_once"]; sys.exit(0 if d["violations"] == 0 and d["crashes"] > 0 else 1)'
fi
echo "BENCH_crash.json OK"

# Integrity smoke: verified copies under injected silent corruption —
# the bench asserts clean-run virtual-time identity across policies and
# zero escapes under Full; the JSON must confirm no corruption escaped
# (DESIGN.md §16). The 5% verify-overhead bar is full-mode only.
INTEGRITY_SMOKE=1 cargo bench -q -p copier-bench --offline --locked --bench fig_integrity
if command -v jq >/dev/null 2>&1; then
    jq -e '[.coverage[] | select(.policy == "full")] | all(.escapes == 0 and .detected > 0)' BENCH_integrity.json >/dev/null
else
    python3 -c 'import json,sys; c=[x for x in json.load(open("BENCH_integrity.json"))["coverage"] if x["policy"]=="full"]; sys.exit(0 if c and all(x["escapes"]==0 and x["detected"]>0 for x in c) else 1)'
fi
echo "BENCH_integrity.json OK"

# Shard-scale smoke: the sharded control plane must sweep 1→N shards
# end to end, drain every pin, and replay the same seed to a bit-identical
# outcome at 4 shards (DESIGN.md §17). The ≥3× goodput bar is full-mode
# only — smoke workloads are too small for the speedup to be meaningful.
SHARDSCALE_SMOKE=1 cargo bench -q -p copier-bench --offline --locked --bench fig_shardscale
if command -v jq >/dev/null 2>&1; then
    jq -e '(.sweep | length > 0) and ([.summary[] | select(.name == "shard_determinism")] | all(.value == 1))' BENCH_shardscale.json >/dev/null
else
    python3 -c 'import json,sys; d=json.load(open("BENCH_shardscale.json")); det=[r for r in d["summary"] if r["name"]=="shard_determinism"]; sys.exit(0 if d["sweep"] and det and all(r["value"]==1 for r in det) else 1)'
fi
echo "BENCH_shardscale.json OK"

# Soak smoke: the O(active)-per-round control plane must beat the
# full-sweep reference on per-round cost, produce ordered latency
# percentiles from a non-empty sample population, and replay the same
# seed bit-identically (DESIGN.md §18). The ≥20× reduction and p999
# bars are full-mode only — smoke tenant counts are too small for the
# sweep cost to dominate honestly.
SOAK_SMOKE=1 cargo bench -q -p copier-bench --offline --locked --bench fig_soak
if command -v jq >/dev/null 2>&1; then
    jq -e '(([.points[] | select(.settled > 0)] | length) == (.points | length))
       and ([.points[] | .p50_ns <= .p99_ns and .p99_ns <= .p999_ns] | all)
       and ([.summary[] | select(.name == "soak_determinism")] | all(.value == 1))
       and ([.summary[] | select(.name == "round_cost_reduction_1e5")] | all(.value > 1))' BENCH_soak.json >/dev/null
else
    python3 - <<'PY'
import json, sys
d = json.load(open("BENCH_soak.json"))
ok = all(p["settled"] > 0 and p["p50_ns"] <= p["p99_ns"] <= p["p999_ns"] for p in d["points"])
det = [r for r in d["summary"] if r["name"] == "soak_determinism"]
red = [r for r in d["summary"] if r["name"] == "round_cost_reduction_1e5"]
ok = ok and det and all(r["value"] == 1 for r in det) and red and all(r["value"] > 1 for r in red)
sys.exit(0 if ok else 1)
PY
fi
echo "BENCH_soak.json OK"

# Repro-corpus replay: every committed .cptr trace under tests/repros/
# must replay through the current build without divergence — a frozen
# regression net over the corruption-draw wire format and the service's
# round structure.
REPRO_REPLAY=1 cargo test -q --offline --locked --test integrity repro_corpus_replays_identically
echo "repro corpus OK"
