#!/usr/bin/env bash
# Tier-1 verify, hermetically: the workspace must build and test with
# zero registry access. --offline is the point — a dependency on a
# non-vendored crate regresses exactly this command, which is how the
# seed state (rand/proptest/criterion unfetchable) broke the build.
# Cargo.lock is committed; --locked refuses silent re-resolution.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --offline --locked
cargo test -q --workspace --offline --locked
cargo clippy --workspace --offline --locked -- -D warnings
